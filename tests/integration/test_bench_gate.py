"""End-to-end regression-gate scenario: an injected slowdown in a real
pipeline step must fail ``scripts/bench_gate.py`` with that step named,
while an unperturbed rerun passes.

This is the loop every future perf PR rides: benchmark session appends
``repro.run/1`` records, the gate snapshots/compares them, CI turns red
iff a step actually got slower.
"""

import importlib
import importlib.util
import json
import time
from pathlib import Path

import pytest

# ``repro.core``'s ``from .sfft import sfft`` shadows the submodule name
# with the function, so fetch the module object explicitly.
sfft_mod = importlib.import_module("repro.core.sfft")
from repro.obs import MetricsRegistry, Tracer, make_run_record, write_jsonl
from repro.signals import make_sparse_signal

N, K = 1 << 12, 4


def _load_script(name):
    path = Path(__file__).resolve().parents[2] / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                 path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _write_runs(path, plan, signal, runs=3):
    """Run the instrumented pipeline ``runs`` times; append run records."""
    for _ in range(runs):
        tracer = Tracer()
        metrics = MetricsRegistry()
        sfft_mod.sfft(signal.time, plan=plan, tracer=tracer, metrics=metrics)
        write_jsonl(path, make_run_record(
            "gate-e2e", params={"n": N, "k": K},
            tracer=tracer, registry=metrics,
        ))


@pytest.fixture(scope="module")
def plan_and_signal():
    from tests.conftest import cached_plan

    return cached_plan(N, K), make_sparse_signal(N, K, seed=5)


class TestBenchGateEndToEnd:
    def test_injected_perm_filter_regression_fails_gate(
        self, tmp_path, monkeypatch, capsys, plan_and_signal
    ):
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "BENCH_RUNS.jsonl"
        baseline = tmp_path / "BENCH_BASELINE.json"
        trajectory = tmp_path / "BENCH_TRAJECTORY.json"
        args = ["--runs", str(runs), "--baseline", str(baseline),
                "--trajectory", str(trajectory)]

        # 1. No baseline yet: recording mode is green and writes one.
        _write_runs(runs, plan, signal)
        assert gate.main(args) == 0
        out = capsys.readouterr().out
        assert "recording" in out
        assert baseline.exists() and trajectory.exists()

        # 2. Unperturbed rerun: gate passes.
        runs.unlink()
        _write_runs(runs, plan, signal)
        assert gate.main(args) == 0
        assert "no confirmed regression" in capsys.readouterr().out

        # 3. Slow the perm+filter binner 3x (the paper's dominant step):
        #    the gate must fail and name the step.
        real_binner = sfft_mod._BINNERS["vectorized"]

        def slow_binner(*a, **kw):
            time.sleep(0.01)
            return real_binner(*a, **kw)

        monkeypatch.setitem(sfft_mod._BINNERS, "vectorized", slow_binner)
        runs.unlink()
        _write_runs(runs, plan, signal)
        assert gate.main(args) == 1
        captured = capsys.readouterr()
        assert "span.perm_filter.total_s" in captured.err
        assert "REGRESSION" in captured.out

        # The whole history is on the trajectory, and every artifact passes
        # the shared validator.
        doc = json.loads(trajectory.read_text())
        assert len(doc["points"]) == 9
        check = _load_script("check_bench_json.py")
        assert check.main([str(baseline), str(trajectory), str(runs)]) == 0

    def test_record_flag_resnapshots(self, tmp_path, capsys, plan_and_signal):
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        baseline = tmp_path / "base.json"
        _write_runs(runs, plan, signal, runs=1)
        args = ["--runs", str(runs), "--baseline", str(baseline),
                "--trajectory", ""]
        assert gate.main(args) == 0
        first = baseline.read_text()
        assert gate.main([*args, "--record"]) == 0
        assert "--record" in capsys.readouterr().out
        assert json.loads(first)["schema"] == "repro.baseline/1"

    def test_missing_runs_is_usage_error(self, tmp_path, capsys):
        gate = _load_script("bench_gate.py")
        assert gate.main(["--runs", str(tmp_path / "nope.jsonl")]) == 2
        assert "no runs file" in capsys.readouterr().err

    def test_classes_filter_skips_wall(self, tmp_path, monkeypatch, capsys,
                                       plan_and_signal):
        """CI mode: --classes modeled accuracy ignores machine-local wall
        noise, even a large one."""
        plan, signal = plan_and_signal
        gate = _load_script("bench_gate.py")
        runs = tmp_path / "runs.jsonl"
        baseline = tmp_path / "base.json"
        args = ["--runs", str(runs), "--baseline", str(baseline),
                "--trajectory", ""]
        _write_runs(runs, plan, signal)
        assert gate.main(args) == 0

        real_binner = sfft_mod._BINNERS["vectorized"]

        def slow_binner(*a, **kw):
            time.sleep(0.01)
            return real_binner(*a, **kw)

        monkeypatch.setitem(sfft_mod._BINNERS, "vectorized", slow_binner)
        runs.unlink()
        _write_runs(runs, plan, signal)
        assert gate.main([*args, "--classes", "modeled", "accuracy"]) == 0
        capsys.readouterr()


class TestDemoGateBlock:
    def test_json_record_reports_missing_baseline(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["8", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["gate"] == {"baseline": None}

    def test_json_record_carries_verdict(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        from repro.obs import make_baseline

        monkeypatch.chdir(tmp_path)
        assert main(["8", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        del record["gate"]
        (tmp_path / "BENCH_BASELINE.json").write_text(
            json.dumps(make_baseline([record]))
        )
        assert main(["8", "2", "--json"]) == 0
        record2 = json.loads(capsys.readouterr().out)
        assert record2["gate"]["baseline"] == "BENCH_BASELINE.json"
        assert record2["gate"]["status"] in ("ok", "regression")
        assert record2["gate"]["checks"]


class TestReportCommand:
    def test_dashboard_renders_artifacts(self, tmp_path, capsys,
                                         plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs = tmp_path / "runs.jsonl"
        _write_runs(runs, plan, signal, runs=2)
        gate = _load_script("bench_gate.py")
        baseline = tmp_path / "base.json"
        trajectory = tmp_path / "traj.json"
        assert gate.main(["--runs", str(runs), "--baseline", str(baseline),
                          "--trajectory", str(trajectory)]) == 0
        capsys.readouterr()

        flame = tmp_path / "stacks.txt"
        assert main(["report", "--runs", str(runs),
                     "--baseline", str(baseline),
                     "--trajectory", str(trajectory),
                     "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "performance trajectory" in out
        assert "regression gate" in out
        assert "per-step attribution" in out
        assert "perm_filter" in out
        stacks = flame.read_text().strip().splitlines()
        assert stacks and all(" " in l for l in stacks)

    def test_report_json_document(self, tmp_path, capsys, plan_and_signal):
        from repro.__main__ import main

        plan, signal = plan_and_signal
        runs = tmp_path / "runs.jsonl"
        _write_runs(runs, plan, signal, runs=1)
        assert main(["report", "--runs", str(runs),
                     "--baseline", str(tmp_path / "absent.json"),
                     "--trajectory", str(tmp_path / "absent2.json"),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.report/1"
        assert doc["runs"] == 1 and doc["verdict"] is None

    def test_report_no_artifacts(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        assert "no observability artifacts" in capsys.readouterr().out

    def test_report_rejects_corrupt_baseline(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "base.json"
        bad.write_text("{not json")
        assert main(["report", "--baseline", str(bad),
                     "--runs", str(tmp_path / "none.jsonl"),
                     "--trajectory", str(tmp_path / "none.json")]) == 2
        assert "not JSON" in capsys.readouterr().err
