"""Shared fixtures for the repro test suite.

Plans are the expensive artifact (filter synthesis does an O(n log n) FFT),
so a session-scoped cache hands identical plans to every test that asks for
the same shape — tests must therefore treat plans as immutable (they are
frozen dataclasses, so mutation raises anyway).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SfftPlan, make_plan
from repro.signals import SparseSignal, make_sparse_signal

_PLAN_CACHE: dict[tuple, SfftPlan] = {}


def pytest_configure(config: pytest.Config) -> None:
    """Honor ``REPRO_CHECK_CONTRACTS=1`` for worker/subprocess-free runs.

    The ``@shape_contract`` wrappers read the environment once at import;
    re-applying it here makes enforcement deterministic even when the
    suite is driven by a runner that imported ``repro`` before setting
    the variable.  CI's static-analysis job runs tier-1 once with this
    flag on, asserting every declared contract dynamically.
    """
    import os

    from repro.analysis.staticcheck.contracts import set_enforcement

    if os.environ.get("REPRO_CHECK_CONTRACTS", "") not in ("", "0"):
        set_enforcement(True)


def cached_plan(n: int, k: int, seed: int = 1234, **overrides) -> SfftPlan:
    """Session-cached plan factory (importable from conftest)."""
    key = (n, k, seed, tuple(sorted(overrides.items())))
    if key not in _PLAN_CACHE:
        _PLAN_CACHE[key] = make_plan(n, k, seed=seed, **overrides)
    return _PLAN_CACHE[key]


@pytest.fixture(autouse=True)
def fresh_global_registry():
    """Reset the process-wide metrics registry around every test.

    Profiled runs that are not handed an explicit registry report into
    ``repro.obs.global_registry()``; without this reset, counters and
    histograms accumulated by one test would leak into the assertions of
    the next (and kind conflicts could surface in whichever test happens
    to run second).
    """
    from repro.obs import global_registry

    global_registry().reset()
    yield
    global_registry().reset()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic per-test generator."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def plan_small() -> SfftPlan:
    """A small (n=1024, k=4) plan shared across tests."""
    return cached_plan(1024, 4)


@pytest.fixture
def plan_medium() -> SfftPlan:
    """A medium (n=8192, k=16) plan shared across tests."""
    return cached_plan(8192, 16)


@pytest.fixture
def signal_small() -> SparseSignal:
    """A 4-sparse signal matching ``plan_small``."""
    return make_sparse_signal(1024, 4, seed=77)


@pytest.fixture
def signal_medium() -> SparseSignal:
    """A 16-sparse signal matching ``plan_medium``."""
    return make_sparse_signal(8192, 16, seed=78)
