"""Property-based tests on estimation exactness and plan round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bin_vectorized,
    bucket_fft,
    estimate_values,
    load_plan,
    make_plan,
    save_plan,
    sfft,
)
from repro.signals import make_sparse_signal


@given(
    st.integers(min_value=10, max_value=13).map(lambda p: 1 << p),
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=2 * np.pi),
)
@settings(max_examples=20, deadline=None)
def test_single_coefficient_estimated_exactly(n, seed, magnitude, phase):
    """A 1-sparse spectrum is reconstructed to the filter tolerance for any
    location, magnitude, and phase."""
    rng = np.random.default_rng(seed)
    loc = int(rng.integers(0, n))
    val = magnitude * n * np.exp(1j * phase)
    sig = make_sparse_signal(n, 1, locations=np.array([loc]), values=np.array([val]))
    plan = make_plan(n, 1, seed=seed ^ 0x1234)
    rows = np.empty((plan.loops, plan.B), dtype=np.complex128)
    for r, perm in enumerate(plan.permutations):
        rows[r] = bin_vectorized(sig.time, plan.filt, plan.B, perm)
    rows = bucket_fft(rows)
    est = estimate_values(
        np.array([loc]), rows, list(plan.permutations), plan.filt, plan.B
    )
    assert abs(est[0] - val) < 1e-5 * abs(val)


@given(
    st.integers(min_value=10, max_value=12).map(lambda p: 1 << p),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_plan_serialization_roundtrip_property(tmp_path_factory, n, k, seed):
    """save/load never changes a transform's output, for any shape.

    (@given fills the rightmost arguments; the pytest fixture comes first.)
    """
    plan = make_plan(n, k, seed=seed)
    path = tmp_path_factory.mktemp("plans") / "p.npz"
    save_plan(plan, path)
    plan2 = load_plan(path)
    sig = make_sparse_signal(n, k, seed=seed ^ 0xBEEF)
    a = sfft(sig.time, plan=plan)
    b = sfft(sig.time, plan=plan2)
    assert (a.locations == b.locations).all()
    assert np.array_equal(a.values, b.values)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_linearity_of_recovery(seed):
    """Scaling the input scales the recovered values (transform linearity)."""
    n, k = 1 << 12, 4
    sig = make_sparse_signal(n, k, seed=seed)
    plan = make_plan(n, k, seed=seed ^ 0xF00D)
    a = sfft(sig.time, plan=plan)
    b = sfft(3.5 * sig.time, plan=plan)
    assert (a.locations == b.locations).all()
    assert np.allclose(b.values, 3.5 * a.values, rtol=1e-9)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=4095))
@settings(max_examples=15, deadline=None)
def test_shift_theorem(seed, shift):
    """Circularly shifting the input multiplies each coefficient by the
    expected phase (the DFT shift theorem), preserved by sparse recovery."""
    n, k = 1 << 12, 4
    sig = make_sparse_signal(n, k, seed=seed)
    plan = make_plan(n, k, seed=seed ^ 0xCAFE)
    a = sfft(sig.time, plan=plan)
    b = sfft(np.roll(sig.time, shift), plan=plan)
    assert (a.locations == b.locations).all()
    expected = a.values * np.exp(-2j * np.pi * a.locations * shift / n)
    assert np.abs(b.values - expected).max() < 1e-6 * np.abs(a.values).max()


@given(
    st.integers(min_value=11, max_value=14).map(lambda p: 1 << p),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=12, deadline=None)
def test_exact_phase_decoder_property(n, k, seed):
    """The sFFT-3.0-style decoder recovers any exactly-sparse spectrum."""
    from repro.core import sfft_exact

    sig = make_sparse_signal(n, k, seed=seed)
    res, stats = sfft_exact(sig.time, k, seed=seed ^ 0xD00D)
    assert set(res.locations.tolist()) == set(sig.locations.tolist())
    for f, v in zip(sig.locations, sig.values):
        assert abs(res.as_dict()[int(f)] - v) < 1e-6 * abs(v)
    assert stats.rounds <= 12
