"""Property tests: the Algorithm-2 binner is collision-free everywhere.

A hypothesis-generated ``(n, B, sigma, tau, rounds)`` matrix drives the
loop-partition binner through the race detector — every geometry must
come back trace-clean — and through the trace → theorem bridge: the
traced store schedule fits the identity affine form, which the symbolic
prover then certifies for all thread counts.  The naive histogram is run
through the same matrix as the negative control.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.staticcheck import (
    binner_store_index,
    check_kernel,
    fit_affine,
    prove_injective,
    prove_loop_partition_binner,
)
from repro.cusim.device import KEPLER_K20X
from repro.gpu.kernels import (
    make_naive_histogram_kernel,
    make_partition_binner_kernel,
)


@st.composite
def binner_geometries(draw):
    """Paper-shaped geometry: n = 2^e, B | n, sigma odd (coprime to n)."""
    e = draw(st.integers(min_value=4, max_value=10))
    n = 1 << e
    b = draw(st.integers(min_value=1, max_value=min(e, 7)))
    B = 1 << b
    sigma = draw(st.integers(min_value=0, max_value=n // 2 - 1)) * 2 + 1
    tau = draw(st.integers(min_value=0, max_value=n - 1))
    rounds = draw(st.integers(min_value=1, max_value=4))
    width = draw(st.integers(min_value=1, max_value=rounds * B))
    return n, B, sigma, tau, rounds, width


@settings(max_examples=40, deadline=None)
@given(geometry=binner_geometries(), seed=st.integers(0, 2**16))
def test_binner_trace_clean_and_symbolically_proved(geometry, seed):
    n, B, sigma, tau, rounds, width = geometry
    rng = np.random.default_rng(seed)
    signal = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    taps = rng.standard_normal(width) + 0j
    kernel = make_partition_binner_kernel(
        B=B, rounds=rounds, sigma=sigma, tau=tau, n=n, width=width,
    )
    check = check_kernel(kernel, B, KEPLER_K20X, signal, taps,
                         np.zeros(B, dtype=np.complex128))

    # 1. Trace verdict: no races, no out-of-bounds, at this geometry.
    assert not [f for f in check.findings
                if f.rule in ("kernel-race", "kernel-oob")], check.findings

    # 2. Trace -> theorem: the store schedule fits buckets[tid] ...
    stores = [ev for ev in check.report.events
              if ev.kind == "store" and not ev.atomic]
    assert stores
    fitted = fit_affine(stores[-1].tids, stores[-1].indices, B)
    assert fitted == binner_store_index(B)

    # 3. ... and the affine form is provably injective for all B threads,
    # agreeing with the universal theorem.
    assert prove_injective(fitted, B).collision_free
    assert prove_loop_partition_binner(B).collision_free
    assert prove_loop_partition_binner().universal


@settings(max_examples=15, deadline=None)
@given(
    num_buckets=st.integers(min_value=1, max_value=16),
    num_keys=st.integers(min_value=17, max_value=96),
    seed=st.integers(0, 2**16),
)
def test_naive_histogram_always_flagged(num_buckets, num_keys, seed):
    # num_keys > num_buckets forces a key collision (pigeonhole), so every
    # drawn instance must race.
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, num_buckets, size=num_keys).astype(np.float64)
    check = check_kernel(make_naive_histogram_kernel(), num_keys,
                         KEPLER_K20X, keys,
                         np.zeros(num_buckets, dtype=np.float64))
    assert any(f.rule == "kernel-race" for f in check.findings)
    # And its data-dependent schedule defeats the affine fitter unless the
    # drawn keys happen to form an affine sequence (possible for tiny
    # bucket counts — then the fit is at least verified exact).
    stores = [ev for ev in check.report.events if ev.kind == "store"]
    fitted = fit_affine(stores[0].tids, stores[0].indices, num_buckets)
    if fitted is not None:
        np.testing.assert_array_equal(
            fitted.evaluate(stores[0].tids), stores[0].indices % num_buckets
        )
