"""Property tests: the flight recorder's bounds and accounting are exact.

For *any* interleaving of span closes and metric updates and *any*
capacity: the ring never exceeds capacity, the drop count equals exactly
the events that no longer fit, and ``dump()`` taken mid-stream is always
a schema-valid ``repro.run/1`` record.  These are the invariants the
always-on contract rests on — a recorder that can grow without bound or
lose events silently is worse than no recorder.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    validate_run_record,
)

# One recorded occurrence: a span close or one instrument update.
_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["span", "counter", "gauge", "histogram"]),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    max_size=60,
)


def _feed(tracer, registry, kind, value):
    if kind == "span":
        tracer.add_span("step", start_s=0.0, duration_s=value)
    elif kind == "counter":
        registry.counter("sfft.loops").inc()
    elif kind == "gauge":
        registry.gauge("sfft.plan_cache.bytes").set(value)
    else:
        registry.histogram("sfft.executor.shard_wall_s").observe(value)


@given(events=_EVENTS, capacity=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_ring_bound_and_drop_accounting_are_exact(events, capacity):
    tracer, registry = Tracer(), MetricsRegistry()
    with FlightRecorder(capacity=capacity).attach(
        tracer=tracer, registry=registry
    ) as rec:
        for kind, value in events:
            _feed(tracer, registry, kind, value)
    assert len(rec) == min(len(events), capacity)
    assert rec.dropped == max(0, len(events) - capacity)
    retained = rec.events()
    assert len(retained) == len(rec)
    # Oldest-first order, and only the newest events survive overflow.
    assert [ev.ts_s for ev in retained] == sorted(
        ev.ts_s for ev in retained
    )


@given(
    events=_EVENTS,
    capacity=st.integers(min_value=1, max_value=16),
    dump_at=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_dump_is_schema_valid_at_any_moment(events, capacity, dump_at):
    tracer, registry = Tracer(), MetricsRegistry()
    with FlightRecorder(capacity=capacity).attach(
        tracer=tracer, registry=registry
    ) as rec:
        for i, (kind, value) in enumerate(events):
            if i == dump_at:
                mid = rec.dump()
                assert validate_run_record(mid) == []
            _feed(tracer, registry, kind, value)
        final = rec.dump()
    assert validate_run_record(final) == []
    assert final["params"]["events"] == len(rec)
    assert final["params"]["dropped"] == rec.dropped
    spans_fed = sum(1 for kind, _ in events if kind == "span")
    assert len(final["spans"]) <= min(spans_fed, capacity)
