"""Property-based tests for the extension layers: Thrust primitives, cuFFT
plans, the Comb screen, and the SIMT interpreter."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cufft import CufftPlan
from repro.cusim import KEPLER_K20X, simt_run, sort_by_key
from repro.core.comb import comb_approved_residues
from repro.signals import make_sparse_signal

DEV = KEPLER_K20X


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
             min_size=1, max_size=100),
    st.booleans(),
)
def test_sort_by_key_is_a_permutation_and_ordered(values, descending):
    keys = np.asarray(values)
    payload = np.arange(keys.size)
    (sk, sv), _ = sort_by_key(keys, payload, descending=descending)
    # Payload is a permutation and keys are ordered.
    assert sorted(sv.tolist()) == payload.tolist()
    diffs = np.diff(sk)
    assert (diffs <= 1e-12).all() if descending else (diffs >= -1e-12).all()
    # Keys still pair with their original payload.
    assert np.allclose(keys[sv], sk)


@given(
    st.integers(min_value=4, max_value=12).map(lambda p: 1 << p),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_cufft_batched_matches_rowwise(logn_pow, batch, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((batch, logn_pow)) + 1j * rng.standard_normal(
        (batch, logn_pow)
    )
    plan = CufftPlan(logn_pow, batch=batch)
    out = plan.execute(data)
    for r in range(batch):
        assert np.allclose(out[r], np.fft.fft(data[r]))
    # Inverse round-trips.
    assert np.allclose(plan.inverse(out), data, atol=1e-9)


@given(
    st.integers(min_value=10, max_value=14).map(lambda p: 1 << p),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_comb_always_keeps_true_support(n, k, seed):
    sig = make_sparse_signal(n, k, seed=seed)
    W = max(64, n >> 5)
    mask = comb_approved_residues(sig.time, W, k, seed=seed ^ 0x5A5A)
    assert mask[sig.locations % W].all()
    # And it actually screens: most classes rejected when k << W.
    if k * 8 < W:
        assert mask.mean() < 0.5


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_simt_copy_kernel_invariants(threads, seed):
    rng = np.random.default_rng(seed)
    src = rng.standard_normal(threads)

    def kernel(w, a, b):
        w.store(b, w.tid, w.load(a, w.tid))

    report, (_, out) = simt_run(kernel, threads, DEV, src, np.zeros(threads))
    assert np.array_equal(out.data, src)
    assert report.loads == threads and report.stores == threads
    # Transactions bounded by [per-warp minimum, per-element maximum].
    warps = -(-threads // DEV.warp_size)
    assert 2 * warps <= report.transactions <= 2 * threads
    assert report.lane_utilization == 1.0
