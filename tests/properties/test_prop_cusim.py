"""Property-based tests for the simulated device (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cusim import (
    KEPLER_K20X,
    AccessPattern,
    GlobalAccess,
    GpuSimulation,
    KernelSpec,
    OpKind,
    estimate_kernel,
    measure_transactions,
    transaction_count,
)

DEV = KEPLER_K20X

kernel_specs = st.builds(
    KernelSpec,
    name=st.sampled_from(["a", "b", "c"]),
    grid_blocks=st.integers(min_value=1, max_value=8192),
    threads_per_block=st.sampled_from([32, 64, 128, 256, 512]),
    flops_per_thread=st.floats(min_value=0, max_value=1e5),
    accesses=st.lists(
        st.builds(
            GlobalAccess,
            pattern=st.sampled_from(list(AccessPattern)),
            elements=st.integers(min_value=0, max_value=1 << 22),
            element_bytes=st.sampled_from([2, 4, 8, 16]),
            stride=st.integers(min_value=1, max_value=256),
        ),
        max_size=3,
    ).map(tuple),
    dependent_rounds=st.integers(min_value=1, max_value=64),
)


@given(kernel_specs)
@settings(max_examples=80)
def test_kernel_timing_invariants(spec):
    t = estimate_kernel(spec, DEV)
    assert t.total_s >= DEV.kernel_launch_overhead_s
    assert t.compute_s >= 0 and t.memory_s >= 0 and t.latency_s >= 0
    assert 0 < t.sm_demand <= 1
    assert t.wire_bytes >= t.useful_bytes * 0 and t.wire_bytes >= 0
    assert 0 < t.coalescing_efficiency <= 1.0 + 1e-9
    # Wire traffic never undercuts useful traffic by the transaction math.
    if t.useful_bytes > 0:
        assert t.wire_bytes >= t.useful_bytes / DEV.transaction_bytes


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([2, 4, 8, 16]),
    st.integers(min_value=1, max_value=512),
)
def test_transaction_count_ordering(elements, eb, stride):
    """random >= strided >= coalesced >= broadcast, always."""
    co = transaction_count(GlobalAccess(AccessPattern.COALESCED, elements, eb), DEV)
    stl = transaction_count(
        GlobalAccess(AccessPattern.STRIDED, elements, eb, stride=stride), DEV
    )
    ra = transaction_count(GlobalAccess(AccessPattern.RANDOM, elements, eb), DEV)
    br = transaction_count(GlobalAccess(AccessPattern.BROADCAST, elements, eb), DEV)
    assert br <= co <= stl <= ra or elements == 0


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=512))
def test_measured_transactions_bounded(seed, count):
    rng = np.random.default_rng(seed)
    addr = rng.integers(0, 1 << 30, count)
    got = measure_transactions(addr, DEV)
    # At least one per warp, at most one per element.
    warps = -(-count // DEV.warp_size)
    assert warps <= got <= count


@st.composite
def timelines(draw):
    n_streams = draw(st.integers(min_value=1, max_value=6))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_streams - 1),
                st.integers(min_value=1, max_value=512),   # grid blocks
                st.floats(min_value=0, max_value=1e4),      # flops/thread
            ),
            min_size=1,
            max_size=12,
        )
    )
    return n_streams, ops


@given(timelines())
@settings(max_examples=50, deadline=None)
def test_scheduler_makespan_bounds(tl):
    """Makespan lies between the longest op and the serialized sum (plus
    issue gaps), stream order holds, and the kernel limit is respected."""
    n_streams, ops = tl
    sim = GpuSimulation(DEV)
    streams = [sim.stream() for _ in range(n_streams)]
    isolated = []
    for sid, blocks, flops in ops:
        t = sim.launch(
            streams[sid],
            KernelSpec("k", grid_blocks=blocks, threads_per_block=128,
                       flops_per_thread=flops),
        )
        isolated.append(t.total_s)
    rep = sim.run()
    gap_budget = (len(ops) + 1) * sim.host_launch_gap_s
    assert rep.makespan_s >= max(isolated) - 1e-12
    assert rep.makespan_s <= sum(isolated) + gap_budget + 1e-9
    assert rep.max_concurrency() <= DEV.max_concurrent_kernels
    # In-stream ordering: records of one stream must not overlap.
    by_stream: dict[int, list] = {}
    for r in rep.records:
        by_stream.setdefault(r.stream_id, []).append(r)
    for recs in by_stream.values():
        recs.sort(key=lambda r: r.start_s)
        for a, b in zip(recs, recs[1:]):
            assert b.start_s >= a.end_s - 1e-12
