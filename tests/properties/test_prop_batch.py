"""Property tests: the batched engine is the per-signal driver, reshaped.

``sfft_batch`` over an ``(S, n)`` stack must recover the *identical*
support (and votes) as ``sfft`` run signal by signal under the same plan,
with values matching to floating-point tolerance — across exact and noisy
inputs, and with the Comb pre-filter engaged or not.  Every batched stage
is a reshape of the single-signal computation, so any divergence is a bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sfft, sfft_batch
from repro.signals import make_sparse_signal
from repro.signals.noise import add_awgn
from tests.conftest import cached_plan


def _stack(n, k, S, seed, snr_db):
    sigs = [make_sparse_signal(n, k, seed=seed + 7 * t) for t in range(S)]
    rows = []
    for t, sig in enumerate(sigs):
        x = sig.time
        if snr_db is not None:
            x, _ = add_awgn(x, snr_db, seed=seed + 11 * t)
        rows.append(x)
    return np.stack(rows)


def _assert_batch_matches_single(X, plan, **exec_kwargs):
    batch = sfft_batch(X, plan=plan, **exec_kwargs)
    assert len(batch) == X.shape[0]
    for s in range(X.shape[0]):
        single = sfft(X[s], plan=plan, **exec_kwargs)
        np.testing.assert_array_equal(
            batch[s].locations, single.locations,
            err_msg=f"signal {s}: support diverged",
        )
        np.testing.assert_array_equal(
            batch[s].votes, single.votes,
            err_msg=f"signal {s}: votes diverged",
        )
        np.testing.assert_allclose(
            batch[s].values, single.values, rtol=1e-12, atol=1e-12,
            err_msg=f"signal {s}: values diverged",
        )


@given(
    logn=st.integers(min_value=10, max_value=12),
    k=st.integers(min_value=2, max_value=8),
    S=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=12, deadline=None)
def test_batch_matches_single_exact(logn, k, S, seed):
    n = 1 << logn
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed, snr_db=None)
    _assert_batch_matches_single(X, plan)


@given(
    logn=st.integers(min_value=10, max_value=12),
    k=st.integers(min_value=2, max_value=6),
    S=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
    snr_db=st.sampled_from([30.0, 15.0, 5.0]),
)
@settings(max_examples=10, deadline=None)
def test_batch_matches_single_noisy(logn, k, S, seed, snr_db):
    n = 1 << logn
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed, snr_db=snr_db)
    _assert_batch_matches_single(X, plan)


@given(
    logn=st.integers(min_value=11, max_value=12),
    k=st.integers(min_value=2, max_value=6),
    S=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=8, deadline=None)
def test_batch_matches_single_with_comb(logn, k, S, seed):
    n = 1 << logn
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed, snr_db=None)
    # Per-signal Comb masks are data-dependent; the batch path must build
    # and apply them exactly as the single-signal driver does.
    _assert_batch_matches_single(X, plan, comb_width=n >> 4, seed=seed)


@given(
    S=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=6, deadline=None)
def test_batch_matches_single_threshold_cutoff(S, seed):
    n, k = 2048, 4
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed, snr_db=None)
    _assert_batch_matches_single(X, plan, cutoff_method="threshold")
