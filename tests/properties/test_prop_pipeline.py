"""Property-based tests for the sFFT pipeline invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bucket_fft,
    bin_vectorized,
    componentwise_median,
    permute_dense,
    permuted_indices,
    random_permutation,
    select_threshold,
    select_topk,
    subsample_spectrum,
)
from repro.filters import make_flat_window

pow2_n = st.integers(min_value=6, max_value=10).map(lambda p: 1 << p)


@given(pow2_n, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40)
def test_permutation_definition1(n, seed):
    """fft(x[(s*i+t) % n])[s*f] == fft(x)[f] * exp(2j*pi*t*f/n) always."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    perm = random_permutation(n, rng)
    yh = np.fft.fft(permute_dense(x, perm))
    xh = np.fft.fft(x)
    f = np.arange(n)
    lhs = yh[(perm.sigma * f) % n]
    rhs = xh * np.exp(2j * np.pi * perm.tau * f / n)
    scale = max(1.0, np.abs(xh).max())
    assert np.abs(lhs - rhs).max() < 1e-8 * scale


@given(pow2_n, st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30)
def test_fold_subsample_identity(n, logb, seed):
    """fft_B(fold_B(y)) == fft_n(y)[:: n/B] for arbitrary y."""
    B = 1 << min(logb + 1, (n.bit_length() - 2))
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    folded = y.reshape(n // B, B).sum(axis=0)
    lhs = np.fft.fft(folded)
    rhs = subsample_spectrum(np.fft.fft(y), B)
    assert np.abs(lhs - rhs).max() < 1e-8 * max(1.0, np.abs(rhs).max())


@given(pow2_n, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25)
def test_binning_matches_dense_path(n, seed):
    """bin_vectorized equals filter-multiply + fold on the dense signal."""
    rng = np.random.default_rng(seed)
    B = max(4, n // 16)
    filt = make_flat_window(n, B, tolerance=1e-6, pad_to_multiple=B)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    perm = random_permutation(n, rng)
    got = bin_vectorized(x, filt, B, perm)
    y = np.zeros(n, dtype=complex)
    idx = permuted_indices(perm, filt.width)
    y[: filt.width] = x[idx] * filt.time
    want = y.reshape(n // B, B).sum(axis=0)
    assert np.abs(got - want).max() < 1e-9 * max(1.0, np.abs(want).max())


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=200),
    st.data(),
)
@settings(max_examples=60)
def test_topk_is_exact(values, data):
    mags = np.asarray(values)
    m = data.draw(st.integers(min_value=1, max_value=mags.size))
    chosen = select_topk(mags, m)
    assert chosen.size == m
    # No unchosen element strictly exceeds a chosen one.
    unchosen = np.setdiff1d(np.arange(mags.size), chosen)
    if unchosen.size:
        assert mags[unchosen].max() <= mags[chosen].min() + 1e-12


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
def test_threshold_select_definition(values, threshold):
    mags = np.asarray(values)
    chosen = set(select_threshold(mags, threshold).tolist())
    assert chosen == {i for i, v in enumerate(mags) if v > threshold}


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_componentwise_median_bounds(rows, cols, seed):
    rng = np.random.default_rng(seed)
    est = rng.standard_normal((rows, cols)) + 1j * rng.standard_normal((rows, cols))
    med = componentwise_median(est)
    assert med.shape == (rows,)
    assert (med.real >= est.real.min(axis=1) - 1e-12).all()
    assert (med.real <= est.real.max(axis=1) + 1e-12).all()
    assert (med.imag >= est.imag.min(axis=1) - 1e-12).all()
    assert (med.imag <= est.imag.max(axis=1) + 1e-12).all()


@given(
    st.integers(min_value=10, max_value=13).map(lambda p: 1 << p),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_sfft_exact_recovery_property(n, k, seed):
    """End-to-end: any well-separated k-sparse signal is recovered exactly.

    Value accuracy holds at the design tolerance whenever the filter fits
    (``k << n / log n``) *and* the median estimator has a strict majority
    of clean loops for the frequency (``median_reliable``).  A capped
    filter (a not-really-sparse problem) or an unlucky permutation draw
    that collides a frequency in most loops degrades only the value — the
    paper's probabilistic estimation guarantee, not a bug — so those
    coefficients get the documented loose bound.  Both predicates are
    deterministic functions of the drawn ``(n, k, seed)``, so this test
    never flakes: e.g. ``(2048, 5, 1290)`` leaves f=280 with 3 clean
    loops of 7 (see the regression test in
    ``tests/unit/test_estimation_reliability.py``) and is checked at the
    loose bound by construction.
    """
    from repro.core import make_plan, median_reliable, sfft
    from repro.signals import make_sparse_signal

    sep = n // (4 * k)
    if sep < 2:
        return
    sig = make_sparse_signal(n, k, seed=seed, min_separation=sep)
    plan = make_plan(n, k, seed=seed ^ 0xABCDEF)
    res = sfft(sig.time, plan=plan)
    assert set(res.locations.tolist()) == set(sig.locations.tolist())
    reliable = dict(zip(
        sig.locations.tolist(),
        median_reliable(sig.locations, plan.permutations, n, plan.B),
    ))
    for f, v in res.as_dict().items():
        truth = sig.values[list(sig.locations).index(f)]
        tol = 1e-4 if (reliable[f] and not plan.filter_capped) else 0.35
        assert abs(v - truth) < tol * abs(truth)
