"""Property-based tests for modular arithmetic (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.modmath import (
    gcd,
    is_power_of_two,
    mod_inverse,
    mod_mult_range,
    next_power_of_two,
)

pow2 = st.integers(min_value=1, max_value=20).map(lambda p: 1 << p)


@given(pow2, st.integers(min_value=0, max_value=1 << 19))
def test_mod_inverse_of_odd_residues(n, half):
    a = (2 * half + 1) % n
    if a == 0:
        a = 1
    inv = mod_inverse(a, n)
    assert (a * inv) % n == 1
    assert 0 <= inv < n


@given(st.integers(min_value=2, max_value=10_000), st.integers(min_value=1, max_value=10_000))
def test_mod_inverse_roundtrip_when_coprime(n, a):
    if gcd(a, n) != 1:
        return
    assert (a * mod_inverse(a, n)) % n == 1


@given(
    st.integers(min_value=1, max_value=100_000),
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.integers(min_value=-(10**6), max_value=10**6),
)
@settings(max_examples=60)
def test_mod_mult_range_matches_recurrence(n, count, step, start):
    got = mod_mult_range(start, count, step, n)
    v = start % n
    s = step % n
    for i in range(count):
        assert got[i] == v
        v = (v + s) % n


@given(st.integers(min_value=0, max_value=1 << 40))
def test_next_power_of_two_properties(n):
    p = next_power_of_two(n)
    assert is_power_of_two(p)
    assert p >= max(1, n)
    if n > 1:
        assert p // 2 < n


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
def test_gcd_divides_both(a, b):
    g = gcd(a, b)
    if g:
        assert a % g == 0 and b % g == 0
