"""Property: tuning changes speed, never results (hypothesis).

For any workload and any tuned configuration the store could hold, a
plan-less ``sfft(x, k)`` resolved through the wisdom seam must be
bit-identical to the same call with the record's resolved overrides
passed explicitly — the tuner picks *among* correct configurations, it
never perturbs what a configuration computes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import global_plan_cache, sfft
from repro.core.parameters import derive_parameters
from repro.signals import make_sparse_signal
from repro.tune import (
    WISDOM_SCHEMA,
    WisdomStore,
    class_key,
    clear_wisdom_cache,
    config_fingerprint,
)


@pytest.fixture(autouse=True)
def clean_resolution_env(monkeypatch):
    for var in ("REPRO_WISDOM", "REPRO_SFFT_B", "REPRO_SFFT_LOOPS"):
        monkeypatch.delenv(var, raising=False)
    clear_wisdom_cache()
    yield
    clear_wisdom_cache()


configs = st.fixed_dictionaries({
    "n_log2": st.integers(min_value=8, max_value=11),
    "k": st.integers(min_value=1, max_value=8),
    "loops": st.integers(min_value=4, max_value=8),
    "b_shift": st.integers(min_value=-1, max_value=1),
    "seed": st.integers(min_value=0, max_value=2**20),
})


@given(configs)
@settings(max_examples=15, deadline=None)
def test_wisdom_consumption_is_bit_identical(tmp_path_factory, cfg):
    n, k = 1 << cfg["n_log2"], cfg["k"]
    base_b = derive_parameters(n, k).B
    b = int(np.clip(base_b * 2 ** cfg["b_shift"], 2, n // 2))

    resolved = {
        "B": int(derive_parameters(n, k, B=b, loops=cfg["loops"]).B),
        "loops": cfg["loops"],
    }
    store_dir = tmp_path_factory.mktemp("wisdom")
    store = WisdomStore(str(store_dir / "W.json"))
    store.append({
        "schema": WISDOM_SCHEMA,
        "class": class_key(n, k),
        "config": {"loops": cfg["loops"]},
        "resolved": resolved,
        "fingerprint": config_fingerprint(n, k, dict(resolved)),
    })

    sig = make_sparse_signal(n, k, seed=cfg["seed"])

    global_plan_cache().clear()
    os.environ["REPRO_WISDOM"] = store.path
    try:
        tuned = sfft(sig.time, k, seed=7)
    finally:
        del os.environ["REPRO_WISDOM"]

    explicit = sfft(sig.time, k, seed=7, **resolved)

    assert tuned.n == explicit.n
    assert np.array_equal(tuned.locations, explicit.locations)
    assert np.array_equal(tuned.values, explicit.values)
    assert np.array_equal(tuned.votes, explicit.votes)
