"""Property tests: sharding is invisible — bit for bit, whatever the knobs.

The executor's contract is exact equality with the serial fused engine
(``locations``, ``values``, ``votes`` — no tolerance) for *every*
execution mode (GIL-bound threads and the shared-memory process pool),
worker count, shard size, and available FFT backend, and
float-tolerance agreement with the solo per-signal driver.  Any
divergence means a stage leaked state across shard boundaries, the
shared-memory descriptors didn't round-trip a plan exactly, or a
backend isn't the pocketfft twin it claims to be.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShardedExecutor, sfft, sfft_batch_fused
from repro.core.fft_backend import available_backends
from repro.signals import make_sparse_signal
from tests.conftest import cached_plan

_BACKENDS = available_backends()


def _stack(n, k, S, seed):
    return np.stack([
        make_sparse_signal(n, k, seed=seed + 7 * t).time for t in range(S)
    ])


def _shard_size(choice, S):
    return {"one": 1, "three": 3, "whole": S, "default": None}[choice]


@given(
    logn=st.integers(min_value=10, max_value=12),
    k=st.integers(min_value=2, max_value=8),
    S=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([1, 2, 4]),
    shard_choice=st.sampled_from(["one", "three", "whole", "default"]),
    backend=st.sampled_from(_BACKENDS),
    mode=st.sampled_from(["thread", "process"]),
)
@settings(max_examples=20, deadline=None)
def test_executor_bit_identical_to_fused(
    logn, k, S, seed, workers, shard_choice, backend, mode
):
    n = 1 << logn
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed)
    serial = sfft_batch_fused(X, plan)
    ex = ShardedExecutor(
        workers=workers,
        shard_size=_shard_size(shard_choice, S),
        fft_backend=backend,
        mode=mode,
    )
    sharded = ex.run(X, plan)
    assert len(sharded) == S
    for s in range(S):
        np.testing.assert_array_equal(
            sharded[s].locations, serial[s].locations,
            err_msg=f"signal {s}: support diverged",
        )
        np.testing.assert_array_equal(
            sharded[s].values, serial[s].values,
            err_msg=f"signal {s}: values diverged",
        )
        np.testing.assert_array_equal(
            sharded[s].votes, serial[s].votes,
            err_msg=f"signal {s}: votes diverged",
        )


@given(
    logn=st.integers(min_value=10, max_value=11),
    k=st.integers(min_value=2, max_value=6),
    S=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([2, 4]),
    mode=st.sampled_from(["thread", "process"]),
)
@settings(max_examples=10, deadline=None)
def test_executor_matches_solo_driver(logn, k, S, seed, workers, mode):
    n = 1 << logn
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed)
    sharded = ShardedExecutor(
        workers=workers, shard_size=1, mode=mode
    ).run(X, plan)
    for s in range(S):
        solo = sfft(X[s], plan=plan)
        np.testing.assert_array_equal(sharded[s].locations, solo.locations)
        np.testing.assert_array_equal(sharded[s].votes, solo.votes)
        np.testing.assert_allclose(
            sharded[s].values, solo.values, rtol=1e-12, atol=1e-12,
        )


@given(
    S=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([1, 2, 4]),
    mode=st.sampled_from(["thread", "process"]),
)
@settings(max_examples=8, deadline=None)
def test_executor_bit_identical_with_comb(S, seed, workers, mode):
    # Comb masks are Generator-seeded and data-dependent; the executor
    # builds them serially in stack order (process mode ships them to
    # workers through the shared data segment), so an integer seed must
    # yield the exact serial-engine masks regardless of sharding or mode.
    n, k = 2048, 4
    plan = cached_plan(n, k)
    X = _stack(n, k, S, seed)
    kwargs = dict(comb_width=n >> 4, seed=seed)
    serial = sfft_batch_fused(X, plan, **kwargs)
    sharded = ShardedExecutor(workers=workers, shard_size=1, mode=mode).run(
        X, plan, **kwargs
    )
    for s in range(S):
        np.testing.assert_array_equal(sharded[s].locations,
                                      serial[s].locations)
        np.testing.assert_array_equal(sharded[s].values, serial[s].values)
        np.testing.assert_array_equal(sharded[s].votes, serial[s].votes)
