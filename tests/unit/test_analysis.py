"""Unit tests for accuracy metrics and profiling breakdowns."""

import numpy as np
import pytest

from repro.analysis import (
    FIG2_GROUPS,
    StepBreakdown,
    l1_error_per_coefficient,
    measure_breakdown,
    modeled_breakdown,
    score_result,
    support_metrics,
)
from repro.core import STEP_NAMES, SparseFFTResult, sfft
from repro.errors import ParameterError
from repro.signals import make_sparse_signal


class TestL1Error:
    def test_zero_for_identical(self):
        spec = np.arange(8, dtype=complex)
        assert l1_error_per_coefficient(spec, spec, 4) == 0.0

    def test_per_coefficient_normalization(self):
        a = np.zeros(8, complex)
        b = np.zeros(8, complex)
        b[3] = 2.0
        assert l1_error_per_coefficient(a, b, 2) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            l1_error_per_coefficient(np.zeros(4), np.zeros(8), 1)

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            l1_error_per_coefficient(np.zeros(4), np.zeros(4), 0)


class TestSupportMetrics:
    def test_perfect(self):
        tp, p, r = support_metrics(np.array([1, 2, 3]), np.array([1, 2, 3]))
        assert (tp, p, r) == (3, 1.0, 1.0)

    def test_partial(self):
        tp, p, r = support_metrics(np.array([1, 2, 9]), np.array([1, 2, 3, 4]))
        assert tp == 2
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(0.5)

    def test_empty_found(self):
        tp, p, r = support_metrics(np.empty(0, dtype=int), np.array([1]))
        assert (tp, p, r) == (0, 0.0, 0.0)

    def test_empty_truth(self):
        tp, p, r = support_metrics(np.array([1]), np.empty(0, dtype=int))
        assert r == 1.0


class TestScoreResult:
    def test_exact_transform_scores_cleanly(self):
        sig = make_sparse_signal(1 << 12, 8, seed=1)
        res = sfft(sig.time, 8, seed=2)
        rep = score_result(res, sig.locations, sig.values)
        assert rep.recall == 1.0 and rep.precision == 1.0
        assert rep.true_positives == 8
        assert rep.l1_error < 1e-4 * (1 << 12)
        assert rep.max_relative_error < 1e-5

    def test_missing_coefficient_lowers_recall(self):
        res = SparseFFTResult(
            n=16, locations=np.array([2]), values=np.array([1.0 + 0j]),
            votes=np.array([4]),
        )
        rep = score_result(res, np.array([2, 5]), np.array([1.0 + 0j, 1.0 + 0j]))
        assert rep.recall == 0.5
        assert rep.max_relative_error == float("inf") or rep.max_relative_error >= 0

    def test_misaligned_truth(self):
        res = SparseFFTResult(
            n=16, locations=np.array([2]), values=np.array([1.0 + 0j]),
            votes=np.array([4]),
        )
        with pytest.raises(ParameterError):
            score_result(res, np.array([1, 2]), np.array([1.0 + 0j]))


class TestBreakdowns:
    def test_measure_breakdown_covers_all_steps(self):
        bd = measure_breakdown(1 << 12, 4, seed=3, repeats=1)
        assert set(bd.seconds) == set(STEP_NAMES)
        assert bd.total > 0

    def test_shares_sum_to_one(self):
        bd = measure_breakdown(1 << 12, 4, seed=3, repeats=1)
        assert sum(bd.shares().values()) == pytest.approx(1.0)

    def test_modeled_breakdown_paper_scale(self):
        bd = modeled_breakdown(1 << 26, 1000, profile="fast")
        assert bd.total > 0
        assert bd.dominant() in bd.seconds

    def test_perm_filter_share_grows_with_n(self):
        small = modeled_breakdown(1 << 19, 1000, profile="fast")
        big = modeled_breakdown(1 << 26, 1000, profile="fast")
        assert (
            big.shares()["perm_filter"] > small.shares()["perm_filter"]
        )

    def test_estimation_share_falls_with_n(self):
        # Figure 2(a)'s counter-intuitive observation.
        small = modeled_breakdown(1 << 19, 1000, profile="fast")
        big = modeled_breakdown(1 << 26, 1000, profile="fast")
        small_rec = small.shares()["recovery"] + small.shares()["estimation"]
        big_rec = big.shares()["recovery"] + big.shares()["estimation"]
        assert big_rec < small_rec

    def test_fig2_groups_cover_steps(self):
        assert set(FIG2_GROUPS) == set(STEP_NAMES)

    def test_zero_breakdown_rejected(self):
        bd = StepBreakdown(n=4, k=1, seconds={"a": 0.0})
        with pytest.raises(ParameterError):
            bd.shares()

    def test_bad_repeats(self):
        with pytest.raises(ParameterError):
            measure_breakdown(1 << 12, 4, repeats=0)
