"""Unit tests for the GPU cusFFT: kernels, configurations, driver."""

import numpy as np
import pytest

from repro.core import make_plan, sfft
from repro.cusim import KEPLER_K20X, OpKind, measure_transactions
from repro.errors import ParameterError
from repro.gpu import (
    ATOMIC_HISTOGRAM,
    BASELINE,
    OPTIMIZED,
    CusFFT,
    CusfftConfig,
    cusfft,
)
from repro.gpu.kernels import (
    atomic_spec,
    bin_atomic_functional,
    bin_layout_functional,
    bin_partition_functional,
    exec_chunk_functional,
    fast_select_functional,
    gather_addresses,
    partition_spec,
    remap_chunk_functional,
    sort_select_functional,
)
from repro.signals import make_sparse_signal
from tests.conftest import cached_plan

DEV = KEPLER_K20X


class TestConfig:
    def test_builtin_variants(self):
        assert BASELINE.loop_partition and not BASELINE.layout_transform
        assert OPTIMIZED.layout_transform and OPTIMIZED.fast_select
        assert not ATOMIC_HISTOGRAM.loop_partition

    def test_labels(self):
        assert BASELINE.label() == "cusFFT-base"
        assert OPTIMIZED.label() == "cusFFT-opt"
        assert "atomic" in ATOMIC_HISTOGRAM.label()

    def test_with_changes(self):
        cfg = BASELINE.with_(fast_select=True)
        assert cfg.fast_select and not cfg.layout_transform

    def test_layout_requires_partition(self):
        with pytest.raises(ParameterError):
            CusfftConfig(loop_partition=False, layout_transform=True)

    def test_bad_streams(self):
        with pytest.raises(ParameterError):
            CusfftConfig(num_streams=0)


class TestKernelFunctionalEquivalence:
    def test_all_binners_match_reference(self, plan_small, signal_small):
        perm = plan_small.permutations[0]
        args = (signal_small.time, plan_small.filt, plan_small.B, perm)
        ref = bin_partition_functional(*args)
        for fn in (bin_atomic_functional, bin_layout_functional):
            got = fn(*args)
            assert np.abs(got - ref).max() < 1e-10 * max(1.0, np.abs(ref).max())

    def test_remap_then_exec_equals_fused(self, plan_small, signal_small):
        perm = plan_small.permutations[1]
        B = plan_small.B
        rounds = plan_small.rounds
        buckets = np.zeros(B, dtype=np.complex128)
        for chunk in range(rounds):
            remapped = remap_chunk_functional(signal_small.time, perm, chunk, B)
            exec_chunk_functional(remapped, plan_small.filt, chunk, B, buckets)
        fused = bin_partition_functional(
            signal_small.time, plan_small.filt, B, perm
        )
        assert np.abs(buckets - fused).max() < 1e-10 * max(1.0, np.abs(fused).max())

    def test_select_variants_agree_on_clear_signal(self, rng):
        mags = np.abs(rng.standard_normal(256)) * 0.01
        hot = rng.choice(256, 8, replace=False)
        mags[hot] = 5.0
        a, _ = sort_select_functional(mags, 8)
        b, _ = fast_select_functional(mags, 8)
        assert set(hot.tolist()) <= set(b.tolist())
        assert set(a.tolist()) == set(hot.tolist())

    def test_gather_addresses_uncoalesced(self, plan_small):
        # The permuted gather touches ~1 segment per element (the paper's
        # motivating observation) while a linear read coalesces 8x better.
        perm = plan_small.permutations[0]
        scattered = measure_transactions(gather_addresses(perm, 512), DEV)
        linear = measure_transactions(np.arange(512) * 16, DEV)
        assert scattered > 4 * linear


class TestKernelSpecs:
    def test_partition_has_no_atomics(self):
        spec = partition_spec(B=4096, rounds=8)
        assert spec.atomics is None
        assert spec.total_threads >= 4096

    def test_atomic_histogram_pays_for_conflicts(self):
        # At paper-scale bucket counts the atomic-update traffic clearly
        # exceeds the collision-free formulation's cost (Section IV-C).
        from repro.cusim import estimate_kernel

        B, rounds = 1 << 16, 10
        part = estimate_kernel(partition_spec(B=B, rounds=rounds), DEV)
        atom = estimate_kernel(atomic_spec(B=B, width=B * rounds), DEV)
        assert atom.atomic_s > 0
        assert atom.total_s > 1.5 * part.total_s

    def test_remap_plus_exec_specs_cover_fused_traffic(self):
        from repro.cusim import estimate_kernel
        from repro.gpu.kernels import exec_spec, remap_spec

        B = 4096
        remap = estimate_kernel(remap_spec(B=B), DEV)
        ex = estimate_kernel(exec_spec(B=B), DEV)
        assert remap.coalescing_efficiency < 0.3   # gather-dominated
        assert ex.coalescing_efficiency == 1.0     # the optimization's point


class TestCusfftDriver:
    @pytest.mark.parametrize("config", [BASELINE, OPTIMIZED, ATOMIC_HISTOGRAM])
    def test_recovers_exactly_all_variants(self, config):
        sig = make_sparse_signal(1 << 12, 8, seed=11)
        run = cusfft(sig.time, 8, config=config, seed=12)
        assert set(run.result.locations.tolist()) == set(sig.locations.tolist())

    def test_matches_cpu_reference_values(self):
        n, k = 1 << 13, 10
        sig = make_sparse_signal(n, k, seed=13)
        transform = CusFFT.create(n, k, config=BASELINE)
        run = transform.execute(sig.time, seed=14)
        ref = sfft(sig.time, k, plan=transform.plan())
        assert (run.result.locations == ref.locations).all()
        assert np.abs(run.result.values - ref.values).max() < 1e-9 * np.abs(
            ref.values
        ).max()

    def test_timeline_kernels_present(self):
        sig = make_sparse_signal(1 << 12, 4, seed=15)
        run = cusfft(sig.time, 4, config=OPTIMIZED, seed=16)
        names = {r.name for r in run.report.records}
        assert "cusfft_layout_remap" in names
        assert "cusfft_layout_exec" in names
        assert "cusfft_fast_select" in names
        assert "cusfft_loc_recovery" in names
        assert "cusfft_mag_reconstruction" in names
        assert any(n.startswith("cufft_stockham") for n in names)

    def test_baseline_timeline_uses_sort(self):
        sig = make_sparse_signal(1 << 12, 4, seed=17)
        run = cusfft(sig.time, 4, config=BASELINE, seed=18)
        names = {r.name for r in run.report.records}
        assert "thrust_radix_scatter" in names
        assert "cusfft_fast_select" not in names

    def test_d2h_transfer_recorded(self):
        sig = make_sparse_signal(1 << 12, 4, seed=19)
        run = cusfft(sig.time, 4, seed=20)
        assert len(run.report.by_kind(OpKind.D2H)) == 1

    def test_h2d_modes(self):
        # Transfer scope ordering: nothing < filter taps <= sampled signal
        # (capped at the full signal) <= whole signal.
        t_none = CusFFT.create(1 << 18, 100, h2d="none").estimated_time()
        t_filt = CusFFT.create(1 << 18, 100, h2d="filter").estimated_time()
        t_samp = CusFFT.create(1 << 18, 100, h2d="sampled").estimated_time()
        t_full = CusFFT.create(1 << 18, 100, h2d="full").estimated_time()
        assert t_none < t_filt <= t_samp <= t_full

    def test_sampled_h2d_sublinear_at_scale(self):
        # At paper scale the sampled transfer is far below the full signal.
        kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=1000)
        t_samp = CusFFT.create(1 << 26, 1000, h2d="sampled", **kw).estimated_time()
        t_full = CusFFT.create(1 << 26, 1000, h2d="full", **kw).estimated_time()
        assert t_samp < 0.5 * t_full

    def test_bad_h2d_mode(self):
        with pytest.raises(ParameterError):
            CusFFT.create(1 << 12, 4, h2d="both")

    def test_modeled_report_without_data(self):
        rep = CusFFT.create(1 << 22, 1000, profile="fast").modeled_report()
        assert rep.makespan_s > 0
        assert len(rep.records) > 10


class TestPaperShapes:
    """The headline performance shapes of Figure 5, asserted as properties."""

    CFG = dict(profile="fast", loops=6, bucket_constant=1.0)

    def _opt(self, n, k=1000):
        return CusFFT.create(
            n, k, config=OPTIMIZED, select_count=k, **self.CFG
        ).estimated_time()

    def _base(self, n, k=1000):
        return CusFFT.create(
            n, k, config=BASELINE, select_count=k, **self.CFG
        ).estimated_time()

    def test_sublinear_scaling(self):
        # 512x the data; far less than 512x the time.
        assert self._opt(1 << 27) / self._opt(1 << 18) < 40

    def test_beats_cufft_at_large_n_loses_at_small_n(self):
        from repro.cufft import CufftPlan

        small = CufftPlan(1 << 18).estimated_time(DEV)
        large = CufftPlan(1 << 27).estimated_time(DEV)
        assert self._opt(1 << 18) > small          # cuFFT wins small
        assert self._opt(1 << 27) * 8 < large      # cusFFT wins big (>8x)

    def test_optimized_beats_baseline_everywhere(self):
        for logn in (18, 22, 27):
            assert self._opt(1 << logn) < self._base(1 << logn)

    def test_speedup_over_cufft_grows_with_n(self):
        from repro.cufft import CufftPlan

        s22 = CufftPlan(1 << 22).estimated_time(DEV) / self._opt(1 << 22)
        s27 = CufftPlan(1 << 27).estimated_time(DEV) / self._opt(1 << 27)
        assert s27 > 2 * s22

    def test_runtime_grows_slowly_with_k(self):
        # Figure 5(b): k 100 -> 1000 increases time by far less than 10x.
        t100 = CusFFT.create(
            1 << 24, 100, config=OPTIMIZED, select_count=100, **self.CFG
        ).estimated_time()
        t1000 = self._opt(1 << 24, 1000)
        assert t1000 < 4 * t100
