"""Edge cases of the symbolic index/shape machinery.

The happy paths (identity store schedule, universal binner theorem, the
data-dependent refusal) live with the race-battery tests; this file pins
the boundary behavior the provers' soundness rests on:

* the injectivity bound ``T <= n // gcd(a, n)`` is *tight* — one more
  thread always produces a concrete collision, for coprime and
  non-coprime scales alike;
* :func:`fit_affine` returns ``None`` (never a wrong theorem) on every
  degenerate trace shape — empty, conflicting duplicates, schedules that
  fit on two points but fail verification;
* :func:`prove_product_equal` keeps its three-way verdict straight —
  proofs and refutations are universal, everything else is a refusal.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.staticcheck.symbolic import (
    AffineIndex,
    binner_load_index,
    fit_affine,
    prove_injective,
    prove_product_equal,
)
from repro.errors import ParameterError


class TestGcdBoundTightness:
    """``T <= n // gcd(a, n)`` is exact, not merely sufficient."""

    @pytest.mark.parametrize("scale,modulus", [
        (1, 7), (3, 7),          # coprime: bound is the full modulus
        (2, 8), (6, 8), (4, 12),  # non-coprime: bound shrinks by the gcd
        (10, 15), (9, 12),
    ])
    def test_bound_is_tight(self, scale, modulus):
        limit = modulus // math.gcd(scale % modulus, modulus)
        assert prove_injective(
            AffineIndex(scale, 3, modulus), limit
        ).collision_free
        refuted = prove_injective(AffineIndex(scale, 3, modulus), limit + 1)
        assert not refuted.collision_free
        assert not refuted.universal

    @pytest.mark.parametrize("scale,modulus", [
        (2, 8), (6, 8), (10, 15), (9, 12), (5, 30),
    ])
    def test_bound_matches_brute_force(self, scale, modulus):
        """The symbolic verdict agrees with exhaustive evaluation."""
        limit = modulus // math.gcd(scale % modulus, modulus)
        idx = AffineIndex(scale, 1, modulus)
        within = idx.evaluate(np.arange(limit))
        assert np.unique(within).size == limit  # injective up to the bound
        beyond = idx.evaluate(np.arange(limit + 1))
        assert np.unique(beyond).size < limit + 1  # and not past it

    def test_refutation_names_a_real_collider(self):
        """The counterexample in the reason is a genuine collision."""
        idx = AffineIndex(6, 0, 8)  # gcd 2, limit 4
        proof = prove_injective(idx, 8)
        assert not proof.collision_free
        # tid 0 and tid `limit` collide; check the pair concretely.
        limit = 8 // math.gcd(6, 8)
        pair = idx.evaluate(np.array([0, limit]))
        assert pair[0] == pair[1]

    def test_scale_larger_than_modulus_reduces(self):
        """``a`` enters the gcd mod ``n`` — 10 mod 8 behaves like 2."""
        big = prove_injective(AffineIndex(10, 0, 8), 4)
        small = prove_injective(AffineIndex(2, 0, 8), 4)
        assert big.collision_free and small.collision_free
        assert not prove_injective(AffineIndex(10, 0, 8), 5).collision_free

    def test_negative_offset_is_harmless(self):
        """Offsets translate the image; injectivity ignores them."""
        assert prove_injective(AffineIndex(3, -5, 16), 16).collision_free

    def test_load_index_round_offset_keeps_scale(self):
        """Per-round gathers share sigma, so one proof covers all rounds."""
        for j in range(4):
            idx = binner_load_index(B=8, j=j, sigma=5, tau=3, n=32)
            assert idx.scale == 5 and idx.modulus == 32
            assert prove_injective(idx, 8).collision_free


class TestFitAffineDegenerateTraces:
    """Every malformed trace yields ``None`` — never a wrong fit."""

    def test_empty_trace(self):
        assert fit_affine(np.array([]), np.array([]), 8) is None

    def test_single_thread_fits_a_constant(self):
        fitted = fit_affine(np.array([3]), np.array([5]), 8)
        assert fitted == AffineIndex(0, 5, 8)

    def test_duplicate_tid_conflicting_targets(self):
        """One thread storing to two elements has no affine schedule."""
        tids = np.array([0, 1, 1, 2])
        indices = np.array([0, 1, 5, 2])
        assert fit_affine(tids, indices, 8) is None

    def test_duplicate_tid_consistent_targets_dedups(self):
        """Re-stores to the same element (loop re-runs) still fit."""
        tids = np.array([0, 1, 1, 2, 2, 2])
        indices = np.array([1, 3, 3, 5, 5, 5])
        assert fit_affine(tids, indices, 8) == AffineIndex(2, 1, 8)

    def test_two_point_fit_rejected_by_third_point(self):
        """Verification runs over the whole trace, not the fitting pair."""
        tids = np.arange(3)
        indices = np.array([0, 1, 3])  # affine on the first two only
        assert fit_affine(tids, indices, 8) is None

    def test_unsorted_trace_is_sorted_before_fitting(self):
        idx = AffineIndex(3, 2, 16)
        tids = np.array([4, 0, 2, 1, 3])
        assert fit_affine(tids, idx.evaluate(tids), 16) == idx

    def test_noncontiguous_tids_with_unsolvable_stride(self):
        """``a*dt ≡ di (mod n)`` can have no solution; the fitter refuses.

        With ``dt = 2`` and even modulus, an odd ``di`` is unreachable.
        """
        tids = np.array([0, 2, 4])
        indices = np.array([0, 1, 2])  # di = 1, dt = 2, modulus 8
        assert fit_affine(tids, indices, 8) is None

    def test_noncontiguous_tids_solvable_stride(self):
        idx = AffineIndex(5, 1, 16)
        tids = np.array([0, 2, 4, 6])
        assert fit_affine(tids, idx.evaluate(tids), 16) == idx

    def test_indices_reduced_mod_modulus(self):
        """Traced addresses past the modulus wrap before fitting."""
        fitted = fit_affine(np.arange(4), np.arange(4) + 8, 8)
        assert fitted == AffineIndex(1, 0, 8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ParameterError):
            fit_affine(np.arange(4), np.arange(5), 8)
        with pytest.raises(ParameterError):
            fit_affine(np.arange(4).reshape(2, 2),
                       np.arange(4).reshape(2, 2), 8)

    def test_modulus_validation(self):
        with pytest.raises(ParameterError):
            AffineIndex(1, 0, 0)


class TestProveProductEqual:
    """The three-way verdict: proof / universal refutation / refusal."""

    def test_identical_forms_are_universally_equal(self):
        proof = prove_product_equal((1, ("B", "S")), (1, ("S", "B")))
        assert proof.collision_free and proof.universal

    def test_coefficients_multiply_through(self):
        proof = prove_product_equal((6, ("S",)), (6, ("S",)))
        assert proof.collision_free and proof.universal

    def test_same_symbols_different_coeff_is_universal_inequality(self):
        """``2S != 3S`` for every positive ``S`` — refuted, universally."""
        proof = prove_product_equal((2, ("S",)), (3, ("S",)))
        assert not proof.collision_free
        assert proof.universal

    def test_different_symbols_is_a_refusal_not_a_refutation(self):
        """``S*L`` vs ``S*v``: equal under some assignments, so no verdict."""
        proof = prove_product_equal((1, ("S", "L")), (1, ("S", "v")))
        assert not proof.collision_free
        assert not proof.universal

    def test_symbol_multiplicity_matters(self):
        """``S*S`` and ``S`` coincide only at ``S == 1`` — refusal."""
        proof = prove_product_equal((1, ("S", "S")), (1, ("S",)))
        assert not proof.collision_free
        assert not proof.universal

    def test_pure_constants(self):
        assert prove_product_equal((4, ()), (4, ())).collision_free
        refuted = prove_product_equal((4, ()), (5, ()))
        assert not refuted.collision_free
        assert refuted.universal

    def test_unsorted_symbol_tuples_normalize(self):
        """Callers need not pre-sort; the prover normalizes both sides."""
        proof = prove_product_equal((2, ("c", "a", "b")), (2, ("b", "c", "a")))
        assert proof.collision_free and proof.universal

    def test_reason_renders_both_sides(self):
        proof = prove_product_equal((2, ("S",)), (3, ("S",)))
        assert "2*S" in proof.reason and "3*S" in proof.reason
