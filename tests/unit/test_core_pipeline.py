"""Unit tests for the sFFT pipeline stages: permutation, binning, subsampled
FFT, cutoff, recovery, estimation."""

import numpy as np
import pytest

from repro.core import (
    Permutation,
    VoteAccumulator,
    bin_loop_partition,
    bin_serial,
    bin_vectorized,
    bucket_fft,
    candidate_frequencies,
    cutoff,
    estimate_values,
    loop_estimates,
    noise_floor_threshold,
    permute_dense,
    permuted_indices,
    random_permutation,
    recover_locations,
    select_threshold,
    select_topk,
    subsample_spectrum,
)
from repro.errors import ParameterError
from repro.signals import make_sparse_signal


class TestPermutation:
    def test_definition1_spectral_identity(self):
        # The core claim: y[i] = x[(sigma*i+tau)%n]  =>
        # fft(y)[sigma*f] = fft(x)[f] * exp(2j*pi*tau*f/n).
        n = 256
        rng = np.random.default_rng(0)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        perm = random_permutation(n, rng)
        y = permute_dense(x, perm)
        xh, yh = np.fft.fft(x), np.fft.fft(y)
        f = np.arange(n)
        lhs = yh[(perm.sigma * f) % n]
        rhs = xh * np.exp(2j * np.pi * perm.tau * f / n)
        assert np.abs(lhs - rhs).max() < 1e-8 * np.abs(xh).max()

    def test_source_and_permuted_frequency_inverse(self):
        perm = random_permutation(1024, np.random.default_rng(1))
        f = np.arange(0, 1024, 37)
        assert (perm.source_frequency(perm.permuted_frequency(f)) == f).all()

    def test_permuted_indices_match_recurrence(self):
        perm = Permutation(n=64, sigma=5, sigma_inv=13, tau=7)
        idx = permuted_indices(perm, 10)
        v, expect = 7, []
        for _ in range(10):
            expect.append(v)
            v = (v + 5) % 64
        assert idx.tolist() == expect

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ParameterError):
            Permutation(n=64, sigma=4, sigma_inv=1, tau=0)

    def test_wrong_inverse_rejected(self):
        with pytest.raises(ParameterError):
            Permutation(n=64, sigma=5, sigma_inv=5, tau=0)

    def test_tau_range_checked(self):
        with pytest.raises(ParameterError):
            Permutation(n=64, sigma=5, sigma_inv=13, tau=64)

    def test_permute_dense_length_check(self):
        perm = random_permutation(64, np.random.default_rng(2))
        with pytest.raises(ParameterError):
            permute_dense(np.zeros(32), perm)

    def test_phase_correction_unit_modulus(self):
        perm = random_permutation(64, np.random.default_rng(3))
        ph = perm.phase_correction(np.arange(64))
        assert np.abs(np.abs(ph) - 1).max() < 1e-12


class TestBinning:
    def test_three_formulations_identical(self, plan_small, signal_small):
        for perm in plan_small.permutations[:3]:
            a = bin_serial(signal_small.time, plan_small.filt, plan_small.B, perm)
            b = bin_vectorized(signal_small.time, plan_small.filt, plan_small.B, perm)
            c = bin_loop_partition(
                signal_small.time, plan_small.filt, plan_small.B, perm
            )
            assert np.abs(a - b).max() < 1e-12 * max(1.0, np.abs(a).max())
            assert np.abs(a - c).max() < 1e-12 * max(1.0, np.abs(a).max())

    def test_fold_subsample_identity(self, plan_small, signal_small):
        # fft_B(buckets) == fft_n(filtered permuted signal)[:: n/B]
        n, B = plan_small.n, plan_small.B
        perm = plan_small.permutations[0]
        y = np.zeros(n, dtype=complex)
        idx = permuted_indices(perm, plan_small.filt.width)
        y[: plan_small.filt.width] = (
            signal_small.time[idx] * plan_small.filt.time
        )
        dense = np.fft.fft(y)
        buckets = bin_vectorized(signal_small.time, plan_small.filt, B, perm)
        assert np.abs(bucket_fft(buckets) - subsample_spectrum(dense, B)).max() < (
            1e-9 * np.abs(dense).max()
        )

    def test_length_mismatch_rejected(self, plan_small):
        with pytest.raises(ParameterError):
            bin_vectorized(
                np.zeros(17, complex), plan_small.filt, plan_small.B,
                plan_small.permutations[0],
            )

    def test_bad_bucket_count_rejected(self, plan_small, signal_small):
        with pytest.raises(ParameterError):
            bin_vectorized(
                signal_small.time, plan_small.filt, 3, plan_small.permutations[0]
            )


class TestSubsampled:
    def test_batched_matches_rowwise(self, rng):
        rows = rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64))
        batched = bucket_fft(rows)
        for r in range(4):
            assert np.allclose(batched[r], np.fft.fft(rows[r]))

    def test_rejects_3d(self):
        with pytest.raises(ParameterError):
            bucket_fft(np.zeros((2, 2, 2)))

    def test_subsample_requires_divisor(self):
        with pytest.raises(ParameterError):
            subsample_spectrum(np.zeros(10), 3)


class TestCutoff:
    def test_topk_exact(self):
        mags = np.array([1.0, 9.0, 3.0, 7.0, 5.0])
        assert set(select_topk(mags, 2).tolist()) == {1, 3}

    def test_topk_full(self):
        assert select_topk(np.arange(4.0), 4).tolist() == [0, 1, 2, 3]

    def test_topk_bounds(self):
        with pytest.raises(ParameterError):
            select_topk(np.arange(4.0), 0)
        with pytest.raises(ParameterError):
            select_topk(np.arange(4.0), 5)

    def test_threshold_selects_above(self):
        mags = np.array([0.1, 5.0, 0.2, 7.0])
        assert set(select_threshold(mags, 1.0).tolist()) == {1, 3}

    def test_threshold_cap_keeps_largest(self):
        mags = np.array([2.0, 5.0, 3.0, 7.0])
        got = select_threshold(mags, 1.0, cap=2)
        assert set(got.tolist()) == {1, 3}

    def test_noise_floor_threshold_ignores_signal(self):
        mags = np.concatenate([np.full(100, 1.0), [1000.0, 2000.0]])
        thr = noise_floor_threshold(mags, factor=4.0)
        assert thr == pytest.approx(4.0)

    def test_cutoff_threshold_falls_back_to_topk(self):
        # Threshold too high -> fewer than m survivors -> topk fallback.
        mags = np.full(64, 1.0)
        got = cutoff(mags, 4, method="threshold")
        assert got.size == 4

    def test_cutoff_unknown_method(self):
        with pytest.raises(ParameterError):
            cutoff(np.arange(4.0), 2, method="bogus")

    def test_cutoff_separates_signal_from_noise(self, rng):
        mags = np.abs(rng.standard_normal(512)) * 0.01
        signal_buckets = rng.choice(512, 8, replace=False)
        mags[signal_buckets] = 10.0
        got = cutoff(mags, 8, method="threshold")
        assert set(signal_buckets.tolist()) <= set(got.tolist())


class TestRecovery:
    def test_candidate_region_contains_true_frequency(self):
        n, B = 1024, 64
        rng = np.random.default_rng(5)
        for _ in range(20):
            perm = random_permutation(n, rng)
            f = int(rng.integers(0, n))
            p = (f * perm.sigma) % n
            # Round-half-up to the nearest bucket centre — the same integer
            # convention estimation uses (banker's rounding would disagree
            # exactly on the half-bucket boundary).
            bucket = ((p + (n // B) // 2) // (n // B)) % B
            cands = candidate_frequencies(np.array([bucket]), perm, B)
            assert f in set(cands.tolist())

    def test_votes_accumulate_across_loops(self):
        n, B = 256, 16
        rng = np.random.default_rng(6)
        perms = [random_permutation(n, rng) for _ in range(5)]
        f = 37
        selected = []
        for perm in perms:
            p = (f * perm.sigma) % n
            selected.append(np.array([((p + (n // B) // 2) // (n // B)) % B]))
        hits, votes = recover_locations(selected, perms, B, vote_threshold=5)
        assert f in set(hits.tolist())
        assert votes[list(hits).index(f)] == 5

    def test_duplicate_candidates_within_loop_vote_once(self):
        acc = VoteAccumulator(32)
        acc.add_loop_votes(np.array([3, 3, 3]))
        assert acc.scores[3] == 1

    def test_empty_candidates_noop(self):
        acc = VoteAccumulator(8)
        acc.add_loop_votes(np.empty(0, dtype=np.int64))
        assert acc.scores.sum() == 0

    def test_hits_threshold_validated(self):
        with pytest.raises(ParameterError):
            VoteAccumulator(8).hits(0)

    def test_mismatched_loops_rejected(self):
        perm = random_permutation(64, np.random.default_rng(0))
        with pytest.raises(ParameterError):
            recover_locations([np.array([0])], [perm, perm], 8, 1)

    def test_bucket_out_of_range_rejected(self):
        perm = random_permutation(64, np.random.default_rng(0))
        with pytest.raises(ParameterError):
            candidate_frequencies(np.array([99]), perm, 8)


class TestEstimation:
    def test_one_sparse_exact(self):
        # A single coefficient must be reconstructed essentially exactly.
        n, k = 4096, 1
        sig = make_sparse_signal(n, 1, seed=11)
        from tests.conftest import cached_plan

        plan = cached_plan(n, k)
        rows = np.empty((plan.loops, plan.B), dtype=complex)
        for r, perm in enumerate(plan.permutations):
            rows[r] = bin_vectorized(sig.time, plan.filt, plan.B, perm)
        rows = bucket_fft(rows)
        vals = estimate_values(
            sig.locations, rows, list(plan.permutations), plan.filt, plan.B
        )
        assert abs(vals[0] - sig.values[0]) < 1e-6 * abs(sig.values[0])

    def test_loop_estimates_shape(self, plan_small, signal_small):
        rows = np.empty((plan_small.loops, plan_small.B), dtype=complex)
        for r, perm in enumerate(plan_small.permutations):
            rows[r] = bin_vectorized(
                signal_small.time, plan_small.filt, plan_small.B, perm
            )
        rows = bucket_fft(rows)
        est = loop_estimates(
            signal_small.locations, rows, list(plan_small.permutations),
            plan_small.filt, plan_small.B,
        )
        assert est.shape == (signal_small.k, plan_small.loops)

    def test_empty_frequencies(self, plan_small):
        rows = np.zeros((plan_small.loops, plan_small.B), dtype=complex)
        vals = estimate_values(
            np.empty(0, dtype=np.int64), rows, list(plan_small.permutations),
            plan_small.filt, plan_small.B,
        )
        assert vals.size == 0

    def test_frequency_out_of_range(self, plan_small):
        rows = np.zeros((plan_small.loops, plan_small.B), dtype=complex)
        with pytest.raises(ParameterError):
            estimate_values(
                np.array([plan_small.n]), rows, list(plan_small.permutations),
                plan_small.filt, plan_small.B,
            )

    def test_wrong_row_shape(self, plan_small):
        with pytest.raises(ParameterError):
            estimate_values(
                np.array([0]), np.zeros((2, 3), complex),
                list(plan_small.permutations), plan_small.filt, plan_small.B,
            )
