"""``scripts/lint_gate.py``: recording mode, gating, and baseline schema.

Mirrors the bench_gate contract: no baseline → record and exit 0; with a
baseline, only *new* fingerprints fail, fixed ones are reported, and the
machine-readable verdict validates.
"""

import importlib.util
import json
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[2]


def _load_script(name):
    path = _ROOT / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _mini_repo(tmp_path, source):
    """A throwaway repo root whose src/repro holds one file."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path


class TestLintGate:
    def test_no_baseline_records_and_exits_zero(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, 'raise ValueError("x")\n')
        baseline = tmp_path / "LINT_BASELINE.json"
        assert gate.main(["--root", str(root), "--no-kernels",
                          "--baseline", str(baseline)]) == 0
        assert "recording" in capsys.readouterr().out
        doc = json.loads(baseline.read_text())
        assert doc["schema"] == "repro.lintbase/1"
        assert len(doc["fingerprints"]) == 1
        assert doc["fingerprints"][0].startswith("bare-valueerror::")

    def test_baselined_finding_passes_gate(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, 'raise ValueError("x")\n')
        baseline = tmp_path / "LINT_BASELINE.json"
        args = ["--root", str(root), "--no-kernels",
                "--baseline", str(baseline)]
        assert gate.main(args) == 0           # record
        assert gate.main(args) == 0           # gate: same debt, green
        assert "all baselined" in capsys.readouterr().out

    def test_new_finding_fails_with_anchor(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, 'raise ValueError("x")\n')
        baseline = tmp_path / "LINT_BASELINE.json"
        args = ["--root", str(root), "--no-kernels",
                "--baseline", str(baseline)]
        assert gate.main(args) == 0
        mod = root / "src" / "repro" / "mod.py"
        mod.write_text(mod.read_text()
                       + "import numpy as np\ny = np.fft.fft(x)\n")
        assert gate.main(args) == 1
        err = capsys.readouterr().err
        assert "NEW" in err and "src/repro/mod.py:3" in err
        assert "[fft-registry-bypass]" in err

    def test_fixed_finding_is_reported_not_failed(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, 'raise ValueError("x")\n')
        baseline = tmp_path / "LINT_BASELINE.json"
        args = ["--root", str(root), "--no-kernels",
                "--baseline", str(baseline)]
        assert gate.main(args) == 0
        (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
        assert gate.main(args) == 0
        out = capsys.readouterr().out
        assert "fixed" in out and "1 fixed" in out

    def test_record_flag_resnapshots(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, 'raise ValueError("x")\n')
        baseline = tmp_path / "LINT_BASELINE.json"
        args = ["--root", str(root), "--no-kernels",
                "--baseline", str(baseline)]
        assert gate.main(args) == 0
        (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
        assert gate.main(args + ["--record"]) == 0
        doc = json.loads(baseline.read_text())
        assert doc["fingerprints"] == []

    def test_json_verdict_shape(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, "x = 1\n")
        baseline = tmp_path / "LINT_BASELINE.json"
        args = ["--root", str(root), "--no-kernels",
                "--baseline", str(baseline), "--json"]
        assert gate.main(args) == 0
        capsys.readouterr()
        assert gate.main(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lintgate/1"
        assert doc["status"] == "ok"
        assert doc["new"] == [] and doc["fixed"] == []

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        gate = _load_script("lint_gate.py")
        root = _mini_repo(tmp_path, "x = 1\n")
        baseline = tmp_path / "LINT_BASELINE.json"
        baseline.write_text('{"schema": "wrong"}')
        assert gate.main(["--root", str(root), "--no-kernels",
                          "--baseline", str(baseline)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_validate_lint_baseline(self):
        gate = _load_script("lint_gate.py")
        good = {"schema": "repro.lintbase/1",
                "fingerprints": ["r::p::m"]}
        assert gate.validate_lint_baseline(good) == []
        assert gate.validate_lint_baseline([]) != []
        assert gate.validate_lint_baseline(
            {"schema": "repro.lintbase/1", "fingerprints": ["nope"]}
        ) != []

    def test_committed_baseline_gates_real_repo(self, capsys):
        # The repo-tip contract: the committed baseline is empty and the
        # tree is clean, so the real gate is green.
        gate = _load_script("lint_gate.py")
        assert gate.main(["--baseline",
                          str(_ROOT / "LINT_BASELINE.json")]) == 0
        assert "ok" in capsys.readouterr().out
