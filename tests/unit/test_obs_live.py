"""Unit tests for the flight recorder (bounded live telemetry ring)."""

import json
import threading

import pytest

from repro.errors import ParameterError
from repro.obs import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightEvent,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    validate_run_record,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class TestWiring:
    def test_span_closes_are_recorded(self):
        tracer = Tracer(clock=FakeClock())
        rec = FlightRecorder().attach(tracer=tracer)
        with tracer.span("perm_filter", category="sfft"):
            pass
        tracer.add_span("bucket_fft", start_s=0.0, duration_s=0.5)
        events = rec.events()
        assert [ev.kind for ev in events] == ["span", "span"]
        assert events[0].name == "perm_filter"
        assert events[1].payload["duration_s"] == 0.5

    def test_metric_updates_are_recorded(self):
        reg = MetricsRegistry()
        rec = FlightRecorder().attach(registry=reg)
        reg.counter("sfft.loops").inc(3)
        reg.gauge("sfft.plan_cache.bytes").set(1024.0)
        reg.histogram("sfft.executor.shard_wall_s").observe(0.25)
        kinds = [ev.payload["metric_kind"] for ev in rec.events()]
        assert kinds == ["counter", "gauge", "histogram"]
        # Counter updates carry the post-increment running total.
        assert rec.events()[0].payload["value"] == 3.0

    def test_detach_stops_recording(self):
        reg = MetricsRegistry()
        rec = FlightRecorder().attach(registry=reg)
        reg.counter("sfft.loops").inc()
        rec.detach()
        reg.counter("sfft.loops").inc()
        assert len(rec) == 1

    def test_context_manager_detaches(self):
        tracer = Tracer(clock=FakeClock())
        with FlightRecorder().attach(tracer=tracer) as rec:
            tracer.add_span("a", start_s=0.0, duration_s=0.1)
        tracer.add_span("b", start_s=0.1, duration_s=0.1)
        assert [ev.name for ev in rec.events()] == ["a"]

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            FlightRecorder(capacity=0)
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY


class TestBoundedRing:
    def test_overflow_drops_oldest_and_accounts(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=3).attach(registry=reg)
        for i in range(5):
            reg.gauge("sfft.loops").set(float(i))
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [ev.payload["value"] for ev in rec.events()] == [2.0, 3.0, 4.0]
        assert reg.counter("sfft.flight.dropped").value == 2

    def test_own_bookkeeping_is_never_recorded(self):
        # The dropped counter lives in the attached registry; recording its
        # own updates would add an event per drop and feed back forever.
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=2).attach(registry=reg)
        for i in range(10):
            reg.gauge("sfft.loops").set(float(i))
        assert all(
            not ev.name.startswith("sfft.flight.") for ev in rec.events()
        )
        assert rec.dropped == 8

    def test_clear_resets_ring_and_drop_count(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=1).attach(registry=reg)
        reg.gauge("sfft.loops").set(1.0)
        reg.gauge("sfft.loops").set(2.0)
        assert rec.dropped == 1
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_concurrent_appends_stay_bounded(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=64).attach(registry=reg)
        gauge = reg.gauge("sfft.loops")

        def spin():
            for i in range(200):
                gauge.set(float(i))

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 64
        assert rec.dropped == 4 * 200 - 64


class TestWindowing:
    def test_events_window_filters_on_record_time(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        rec = FlightRecorder(clock=clock).attach(registry=reg)
        reg.gauge("sfft.loops").set(1.0)    # ts 0.0
        clock.tick(10.0)
        reg.gauge("sfft.loops").set(2.0)    # ts 10.0
        clock.tick(1.0)                      # now 11.0
        assert len(rec.events()) == 2
        assert [ev.payload["value"] for ev in rec.events(5.0)] == [2.0]
        assert rec.events(0.0) == []

    def test_negative_window_rejected(self):
        with pytest.raises(ParameterError):
            FlightRecorder().events(-1.0)


class TestDump:
    def _loaded(self, capacity=16):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=capacity, clock=clock).attach(
            tracer=tracer, registry=reg
        )
        tracer.add_span("perm_filter", start_s=0.0, duration_s=0.01,
                        category="sfft")
        reg.counter("sfft.loops").inc(2)
        reg.histogram("sfft.executor.shard_wall_s").observe_many(
            [0.1, 0.3, 0.2]
        )
        return rec

    def test_dump_is_schema_valid_and_json_serialisable(self):
        snapshot = self._loaded().dump()
        assert validate_run_record(snapshot) == []
        json.dumps(snapshot)  # no exotic types leak through

    def test_dump_params_document_the_recorder(self):
        rec = self._loaded(capacity=16)
        snapshot = rec.dump(name="mid-stream")
        assert snapshot["name"] == "mid-stream"
        assert snapshot["params"]["capacity"] == 16
        assert snapshot["params"]["events"] == 5
        assert snapshot["params"]["dropped"] == 0

    def test_dump_reconstructs_metric_state(self):
        metrics = self._loaded().dump()["metrics"]
        assert metrics["sfft.loops"] == {"kind": "counter", "value": 2.0}
        hist = metrics["sfft.executor.shard_wall_s"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.6)
        assert hist["min"] == 0.1 and hist["max"] == 0.3

    def test_dump_spans_carry_the_closed_spans(self):
        spans = self._loaded().dump()["spans"]
        assert len(spans) == 1
        assert spans[0]["name"] == "perm_filter"
        assert spans[0]["category"] == "sfft"
        assert spans[0]["duration_s"] == pytest.approx(0.01)

    def test_chrome_trace_events_replay_buffered_spans(self):
        events = self._loaded().chrome_trace_events()
        complete = [ev for ev in events if ev.get("ph") == "X"]
        assert [ev["name"] for ev in complete] == ["perm_filter"]
        assert complete[0]["dur"] == pytest.approx(0.01 * 1e6)


class TestFlightEvent:
    def test_is_frozen(self):
        ev = FlightEvent(kind="metric", ts_s=0.0, name="sfft.loops")
        with pytest.raises(AttributeError):
            ev.name = "other"
