"""Unit tests for the parameter-resolution seam (repro.core.params).

Precedence under test, highest first: explicit kwargs > wisdom store >
environment pins > paper defaults — plus the consumption metrics
(``sfft.wisdom.hit`` / ``miss`` / ``stale``) and the bit-identity
guarantee (a wisdom hit produces exactly the plan its overrides name).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import global_plan_cache, make_plan, sfft, sfft_batch
from repro.core.params import (
    ENV_B,
    ENV_LOOPS,
    ENV_WISDOM,
    RESOLUTION_SOURCES,
    resolve_sfft_config,
)
from repro.core.parameters import derive_parameters
from repro.errors import ParameterError
from repro.obs import MetricsRegistry, global_registry
from repro.signals import make_sparse_signal
from repro.tune import (
    WISDOM_SCHEMA,
    WisdomStore,
    class_key,
    clear_wisdom_cache,
    config_fingerprint,
)

N, K = 1024, 4


@pytest.fixture(autouse=True)
def clean_resolution_env(monkeypatch):
    """Ambient wisdom/env pins must not leak into these assertions."""
    monkeypatch.delenv(ENV_WISDOM, raising=False)
    monkeypatch.delenv(ENV_B, raising=False)
    monkeypatch.delenv(ENV_LOOPS, raising=False)
    clear_wisdom_cache()
    yield
    clear_wisdom_cache()


def write_wisdom(path, n=N, k=K, *, loops=6, batch=1, noise="exact",
                 fingerprint=None, **config_extra):
    """One valid store entry; ``fingerprint`` overrides for staleness."""
    params = derive_parameters(n, k, loops=loops)
    resolved = {"B": int(params.B), "loops": int(params.loops)}
    record = {
        "schema": WISDOM_SCHEMA,
        "class": class_key(n, k, noise, batch),
        "config": {"loops": loops, **config_extra},
        "resolved": resolved,
        "fingerprint": fingerprint
        or config_fingerprint(n, k, dict(resolved)),
    }
    WisdomStore(str(path)).append(record)
    return record


class TestPrecedence:
    def test_defaults_when_nothing_configured(self):
        resolved = resolve_sfft_config(N, K)
        assert resolved.source == "default"
        assert resolved.overrides == {} and resolved.class_key is None

    def test_sources_tuple_is_ordered(self):
        assert RESOLUTION_SOURCES == ("explicit", "wisdom", "env", "default")

    def test_explicit_beats_wisdom_and_env(self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        monkeypatch.setenv(ENV_LOOPS, "9")
        resolved = resolve_sfft_config(N, K, explicit={"loops": 5})
        assert resolved.source == "explicit"
        assert resolved.overrides == {"loops": 5}

    def test_explicit_comb_width_alone_pins_the_config(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv(ENV_LOOPS, "9")
        resolved = resolve_sfft_config(N, K, comb_width=64)
        assert resolved.source == "explicit"
        assert resolved.comb_width == 64 and resolved.overrides == {}

    def test_wisdom_beats_env(self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        record = write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        monkeypatch.setenv(ENV_LOOPS, "9")
        resolved = resolve_sfft_config(N, K)
        assert resolved.source == "wisdom"
        assert resolved.overrides == record["resolved"]
        assert resolved.class_key == record["class"]

    def test_env_beats_defaults(self, monkeypatch):
        monkeypatch.setenv(ENV_B, "64")
        monkeypatch.setenv(ENV_LOOPS, "5")
        resolved = resolve_sfft_config(N, K)
        assert resolved.source == "env"
        assert resolved.overrides == {"B": 64, "loops": 5}

    def test_non_integer_env_pin_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_B, "many")
        with pytest.raises(ParameterError, match=ENV_B):
            resolve_sfft_config(N, K)

    def test_wisdom_path_argument_overrides_env(self, tmp_path,
                                                monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(tmp_path / "elsewhere.json"))
        resolved = resolve_sfft_config(N, K, wisdom_path=str(store))
        assert resolved.source == "wisdom"

    def test_empty_wisdom_path_disables_the_leg(self, tmp_path,
                                                monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        resolved = resolve_sfft_config(N, K, wisdom_path="")
        assert resolved.source == "default"


class TestWisdomMetrics:
    def test_hit_increments_counter(self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        resolve_sfft_config(N, K)
        assert global_registry().counter("sfft.wisdom.hit").value == 1

    def test_miss_increments_counter(self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        resolved = resolve_sfft_config(N, 2 * K)  # class never tuned
        assert resolved.source == "default"
        assert global_registry().counter("sfft.wisdom.miss").value == 1

    def test_stale_entry_is_ignored_and_counted(self, tmp_path,
                                                monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6, fingerprint="0" * 16)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        monkeypatch.setenv(ENV_LOOPS, "5")
        resolved = resolve_sfft_config(N, K)
        # The stale record must not be applied; resolution falls through
        # to the next leg (env here).
        assert resolved.source == "env"
        assert resolved.overrides == {"loops": 5}
        assert global_registry().counter("sfft.wisdom.stale").value == 1
        assert global_registry().counter("sfft.wisdom.hit").value == 0

    def test_no_store_configured_emits_no_metrics(self):
        resolve_sfft_config(N, K)
        snapshot = global_registry().snapshot()
        assert not any(name.startswith("sfft.wisdom.")
                       for name in snapshot)


class TestTransformConsumption:
    def test_sfft_under_wisdom_is_bit_identical_to_explicit(
            self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        record = write_wisdom(store, loops=6)
        sig = make_sparse_signal(N, K, seed=77)

        monkeypatch.setenv(ENV_WISDOM, str(store))
        global_plan_cache().clear()
        tuned = sfft(sig.time, K, seed=3)

        monkeypatch.delenv(ENV_WISDOM)
        explicit = sfft(sig.time, K, seed=3, **record["resolved"])

        assert np.array_equal(tuned.locations, explicit.locations)
        assert np.array_equal(tuned.values, explicit.values)
        assert tuned.locations.size == K

    def test_sfft_batch_consumes_wisdom_plan(self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        record = write_wisdom(store, loops=6, batch=4)
        stack = np.stack([
            make_sparse_signal(N, K, seed=80 + t).time for t in range(4)
        ])

        monkeypatch.setenv(ENV_WISDOM, str(store))
        global_plan_cache().clear()
        tuned = sfft_batch(stack, K, seed=3)

        monkeypatch.delenv(ENV_WISDOM)
        plan = make_plan(N, K, seed=3, **record["resolved"])
        explicit = sfft_batch(stack, plan=plan, seed=3)

        for a, b in zip(tuned, explicit):
            assert np.array_equal(a.locations, b.locations)
            assert np.array_equal(a.values, b.values)

    def test_explicit_kwargs_keep_old_behavior_under_wisdom(
            self, tmp_path, monkeypatch):
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        sig = make_sparse_signal(N, K, seed=77)
        tuned = sfft(sig.time, K, seed=3, loops=8)

        monkeypatch.delenv(ENV_WISDOM)
        plain = sfft(sig.time, K, seed=3, loops=8)
        assert np.array_equal(tuned.values, plain.values)

    def test_wisdom_hit_recorded_globally_not_per_run(self, tmp_path,
                                                      monkeypatch):
        # The per-run registry keeps CPU/GPU metric name parity (the
        # device model has no resolution step), so wisdom counters land
        # on the global registry only.
        store = tmp_path / "W.json"
        write_wisdom(store, loops=6)
        monkeypatch.setenv(ENV_WISDOM, str(store))
        registry = MetricsRegistry()
        sig = make_sparse_signal(N, K, seed=77)
        result = sfft(sig.time, K, seed=3, metrics=registry)
        assert result.locations.size == K
        assert global_registry().counter("sfft.wisdom.hit").value == 1
        assert not any(name.startswith("sfft.wisdom.")
                       for name in registry.names())
