"""Unit tests: the critical-path engine (`repro.obs.critical`).

The load-bearing invariant is the tiling one — the path segments cover
``[first start, last end]`` with no gaps and no overlaps, so per-stage
shares sum to exactly 1.0 — because the Amdahl what-if projections are
only well-posed on a partition of the makespan.
"""

import pytest

from repro.errors import ParameterError
from repro.obs import (
    IDLE_STAGE,
    Tracer,
    critical_path,
    render_critical_path,
    stage_of,
    what_if_speedup,
)


def _span(name, start, dur, track="cpu", depth=0, attrs=None):
    return {
        "name": name, "track": track, "category": "t",
        "start_s": start, "duration_s": dur, "depth": depth,
        **({"attrs": attrs} if attrs else {}),
    }


class TestStageOf:
    def test_plain_names_pass_through(self):
        assert stage_of("perm_filter") == "perm_filter"
        assert stage_of("executor.run") == "executor.run"

    def test_shard_stage_prefix_is_stripped(self):
        assert stage_of("shard3.bucket_fft") == "bucket_fft"
        assert stage_of("shard12.estimation") == "estimation"

    def test_bare_shard_folds_to_shard(self):
        assert stage_of("shard0") == "shard"
        assert stage_of("shard42") == "shard"


class TestWhatIfSpeedup:
    def test_amdahl_half_share_doubled(self):
        assert what_if_speedup(0.5, 2.0) == pytest.approx(1.0 / 0.75)

    def test_zero_share_is_no_improvement(self):
        assert what_if_speedup(0.0, 10.0) == 1.0

    def test_full_share_tracks_the_factor(self):
        assert what_if_speedup(1.0, 4.0) == pytest.approx(4.0)

    def test_bad_factor_raises(self):
        with pytest.raises(ParameterError, match="factor"):
            what_if_speedup(0.5, 0.0)
        with pytest.raises(ParameterError, match="factor"):
            what_if_speedup(0.5, -1.0)

    def test_bad_share_raises(self):
        with pytest.raises(ParameterError, match="share"):
            what_if_speedup(1.5, 2.0)
        with pytest.raises(ParameterError, match="share"):
            what_if_speedup(-0.1, 2.0)


class TestCriticalPathSweep:
    def test_empty_trace(self):
        cp = critical_path([])
        assert cp.segments == ()
        assert cp.makespan_s == 0.0
        assert cp.stage_shares() == {}

    def test_single_span_owns_the_whole_path(self):
        cp = critical_path([_span("a", 0.0, 2.0)])
        assert cp.stage_shares() == {"a": pytest.approx(1.0)}
        assert cp.makespan_s == pytest.approx(2.0)

    def test_zero_duration_spans_are_skipped(self):
        cp = critical_path([_span("a", 0.0, 1.0), _span("ghost", 0.5, 0.0)])
        assert cp.stage_shares() == {"a": pytest.approx(1.0)}

    def test_latest_start_wins_overlap(self):
        # b starts inside a: b is the more recent scheduling decision, so
        # it owns [1, 2]; a keeps [0, 1] and reclaims [2, 3].
        cp = critical_path([_span("a", 0.0, 3.0), _span("b", 1.0, 1.0)])
        path = cp.stage_path_s()
        assert path["a"] == pytest.approx(2.0)
        assert path["b"] == pytest.approx(1.0)
        assert [seg.name for seg in cp.segments] == ["a", "b", "a"]

    def test_gap_becomes_idle(self):
        cp = critical_path([_span("a", 0.0, 1.0), _span("b", 2.0, 1.0)])
        shares = cp.stage_shares()
        assert shares[IDLE_STAGE] == pytest.approx(1.0 / 3.0)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shares_always_sum_to_one(self):
        spans = [
            _span("executor.run", 0.0, 10.0, track="executor"),
            _span("shard0", 0.1, 4.0, track="worker0"),
            _span("shard0.bucket_fft", 0.2, 3.0, track="worker0", depth=1),
            _span("shard1", 0.1, 9.0, track="worker1"),
            _span("shard1.estimation", 4.0, 5.0, track="worker1", depth=1),
        ]
        shares = critical_path(spans).stage_shares()
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        # Stage names fold across shards; the root soaks the rest.
        assert "bucket_fft" in shares and "estimation" in shares
        assert "executor.run" in shares

    def test_deeper_span_wins_tied_start(self):
        cp = critical_path([
            _span("outer", 0.0, 1.0, depth=0),
            _span("inner", 0.0, 1.0, depth=1),
        ])
        assert [seg.name for seg in cp.segments] == ["inner"]

    def test_queue_wait_attrs_are_summed(self):
        cp = critical_path([
            _span("shard0", 0.0, 1.0, attrs={"queue_wait_s": 0.25}),
            _span("shard1", 1.0, 1.0, attrs={"queue_wait_s": 0.5}),
            _span("other", 0.0, 0.5, attrs={"queue_wait_s": True}),
        ])
        assert cp.queue_wait_s == pytest.approx(0.75)

    def test_accepts_live_spans(self):
        tracer = Tracer()
        with tracer.span("outer", category="t"):
            with tracer.span("inner", category="t"):
                pass
        cp = critical_path(tracer.spans)
        assert sum(cp.stage_shares().values()) == pytest.approx(1.0)
        assert "inner" in cp.stage_shares()

    def test_what_if_method_uses_path_share(self):
        cp = critical_path([_span("a", 0.0, 1.0), _span("b", 1.0, 1.0)])
        assert cp.what_if("b", 2.0) == pytest.approx(1.0 / 0.75)
        assert cp.what_if("not-on-path", 2.0) == 1.0


class TestRenderCriticalPath:
    def test_empty_message(self):
        assert "no spans" in render_critical_path(critical_path([]))

    def test_table_rows_and_queue_footer(self):
        cp = critical_path([
            _span("a", 0.0, 3.0, attrs={"queue_wait_s": 0.1}),
            _span("b", 3.0, 1.0),
        ])
        out = render_critical_path(cp, what_if_factor=2.0)
        assert "critical path" in out
        assert "a" in out and "75.0%" in out
        assert "queue wait" in out

    def test_idle_has_no_what_if(self):
        cp = critical_path([_span("a", 0.0, 1.0), _span("b", 2.0, 1.0)])
        row = [line for line in render_critical_path(cp).splitlines()
               if IDLE_STAGE in line]
        assert row and row[0].rstrip().endswith("-")
