"""Unit tests for the streaming export surfaces.

Prometheus text exposition, ``repro.telemetry/1`` heartbeats (maker,
validator, flusher), the crash-safe append primitive they share, and the
``python -m repro top`` dashboard renderer.
"""

import json

import pytest

from repro.errors import ParameterError
from repro.obs import (
    TELEMETRY_SCHEMA,
    MetricsRegistry,
    TelemetryFlusher,
    dashboard_sample,
    make_telemetry_record,
    prometheus_name,
    render_dashboard,
    render_prometheus,
    validate_telemetry_record,
)
from repro.obs.export import atomic_append_text


def _loaded_registry():
    reg = MetricsRegistry()
    reg.counter("sfft.plan_cache.hit").inc(3)
    reg.gauge("sfft.plan_cache.bytes").set(4096.0)
    reg.histogram("sfft.executor.shard_wall_s").observe_many(
        [0.01, 0.02, 0.03, 0.04]
    )
    return reg


class TestAtomicAppend:
    def test_creates_then_appends(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_append_text(path, "one\n")
        atomic_append_text(path, "two\n")
        with open(path) as fh:
            assert fh.read() == "one\ntwo\n"

    def test_never_leaves_temp_files(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_append_text(path, "line\n")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestPrometheusRendering:
    def test_name_mapping(self):
        assert prometheus_name("sfft.plan_cache.bytes") \
            == "sfft_plan_cache_bytes"
        assert prometheus_name("my-series.x") == "my_series_x"

    def test_counter_gets_total_suffix(self):
        text = render_prometheus(_loaded_registry())
        assert "# TYPE sfft_plan_cache_hit_total counter" in text
        assert "sfft_plan_cache_hit_total 3.0" in text

    def test_gauge_rendered_unset_gauge_skipped(self):
        reg = _loaded_registry()
        reg.gauge("sfft.mem.traced_bytes")  # created but never set
        text = render_prometheus(reg)
        assert "sfft_plan_cache_bytes 4096.0" in text
        assert "traced_bytes" not in text

    def test_histogram_renders_as_summary(self):
        text = render_prometheus(_loaded_registry())
        assert "# TYPE sfft_executor_shard_wall_s summary" in text
        assert 'sfft_executor_shard_wall_s{quantile="0.5"}' in text
        assert 'sfft_executor_shard_wall_s{quantile="0.99"}' in text
        assert "sfft_executor_shard_wall_s_count 4.0" in text
        assert "sfft_executor_shard_wall_s_sum 0.1" in text

    def test_ends_with_newline_even_when_empty(self):
        assert render_prometheus(MetricsRegistry()) == "\n"
        assert render_prometheus(_loaded_registry()).endswith("\n")


class TestTelemetryRecords:
    def test_round_trip_validates(self):
        record = make_telemetry_record(
            _loaded_registry(), seq=0, events=5, dropped=0
        )
        assert record["schema"] == TELEMETRY_SCHEMA
        assert validate_telemetry_record(record) == []
        assert validate_telemetry_record(json.loads(json.dumps(record))) == []

    @pytest.mark.parametrize("patch,field", [
        ({"schema": "repro.run/1"}, "schema"),
        ({"seq": -1}, "seq"),
        ({"seq": True}, "seq"),
        ({"ts_s": -0.5}, "ts_s"),
        ({"metrics": []}, "metrics"),
        ({"events": -2}, "events"),
        ({"dropped": 1.5}, "dropped"),
    ])
    def test_invalid_records_name_the_field(self, patch, field):
        record = make_telemetry_record(MetricsRegistry(), seq=0,
                                       events=0, dropped=0)
        record.update(patch)
        problems = validate_telemetry_record(record)
        assert problems and any(field in p for p in problems)

    def test_metric_states_need_a_kind(self):
        record = make_telemetry_record(MetricsRegistry(), seq=0)
        record["metrics"] = {"sfft.loops": {"value": 1.0}}
        assert any("kind" in p for p in validate_telemetry_record(record))

    def test_non_dict_rejected(self):
        assert validate_telemetry_record([1, 2]) != []


class FakeRecorder:
    def __init__(self, events=7, dropped=2):
        self._events, self.dropped = events, dropped

    def __len__(self):
        return self._events


class TestTelemetryFlusher:
    def test_interval_validated(self, tmp_path):
        with pytest.raises(ParameterError):
            TelemetryFlusher(str(tmp_path / "t.jsonl"), interval_s=0)

    def test_flush_now_appends_one_valid_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        flusher = TelemetryFlusher(path, _loaded_registry())
        record = flusher.flush_now()
        assert validate_telemetry_record(record) == []
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == json.loads(
            json.dumps(record)
        )

    def test_sequence_numbers_are_monotonic(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        flusher = TelemetryFlusher(path, MetricsRegistry())
        for _ in range(3):
            flusher.flush_now()
        with open(path) as fh:
            seqs = [json.loads(line)["seq"] for line in fh]
        assert seqs == [0, 1, 2]
        assert flusher.seq == 3

    def test_recorder_annotates_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        flusher = TelemetryFlusher(
            path, MetricsRegistry(), recorder=FakeRecorder(7, 2)
        )
        record = flusher.flush_now()
        assert record["events"] == 7 and record["dropped"] == 2

    def test_start_stop_bracket_with_records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryFlusher(path, MetricsRegistry(), interval_s=60.0):
            pass  # first flush on start, final flush on stop
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert validate_telemetry_record(json.loads(line)) == []

    def test_double_start_rejected(self, tmp_path):
        flusher = TelemetryFlusher(str(tmp_path / "t.jsonl"),
                                   MetricsRegistry(), interval_s=60.0)
        flusher.start()
        try:
            with pytest.raises(ParameterError):
                flusher.start()
        finally:
            flusher.stop()


class TestDashboard:
    def test_sample_reads_none_before_traffic(self):
        sample = dashboard_sample(MetricsRegistry())
        assert sample["queue_wait_p50_s"] is None
        assert sample["plan_cache_bytes"] is None
        assert sample["ts_s"] >= 0

    def test_hit_rate_derived_from_counters_when_gauge_missing(self):
        reg = MetricsRegistry()
        reg.counter("sfft.plan_cache.hit").inc(3)
        reg.counter("sfft.plan_cache.miss").inc(1)
        assert dashboard_sample(reg)["plan_cache_hit_rate"] \
            == pytest.approx(0.75)

    def test_hit_rate_gauge_wins_over_derivation(self):
        reg = MetricsRegistry()
        reg.counter("sfft.plan_cache.hit").inc(1)
        reg.counter("sfft.plan_cache.miss").inc(1)
        reg.gauge("sfft.plan_cache.hit_rate").set(0.9)
        assert dashboard_sample(reg)["plan_cache_hit_rate"] == 0.9

    def test_render_empty_history(self):
        frame = render_dashboard([], title="live telemetry")
        assert "live telemetry" in frame
        assert "(no data)" in frame

    def test_render_shows_values_and_sparklines(self):
        reg = _loaded_registry()
        reg.gauge("sfft.plan_cache.hit_rate").set(0.5)
        samples = [dashboard_sample(reg) for _ in range(3)]
        frame = render_dashboard(samples, width=8)
        assert "(3 sample(s))" in frame
        assert "plan cache bytes" in frame and "4.0 KiB" in frame
        assert "50.0%" in frame
        # Series never observed still render, honestly empty.
        assert "(no data)" in frame
