"""The median-reliability predicate and the (2048, 5, 1290) regression.

``test_sfft_exact_recovery_property`` used to flake at the hypothesis
draw ``(n=2048, k=5, seed=1290)``: locations recover exactly but f=280's
value lands ~7e-2 off, far beyond the 1e-4 design tolerance.  Diagnosis
(pinned here deterministically): of the plan's 7 loops, f=280 shares a
bucket with another true frequency in three (f=810 in loop 0, f=1275 in
loop 1, f=1906 in loop 6) and loop 2 is contaminated by f=1906's
transition-band leakage (permuted distance 26 < n/B = 32 from the bucket
center, where the filter response has left the flat passband).  Only 3
of 7 loop estimates are clean, so the componentwise median can land on a
contaminated sample — the paper's probabilistic step-6 guarantee failing
as designed for an unlucky permutation draw, **not** an estimator bug.

The fix is a deterministic predicate, :func:`repro.core.median_reliable`
(strict majority of clean loops), which the property test now uses to
decide per-frequency whether the design tolerance or the documented
loose bound applies.
"""

import numpy as np
import pytest

from repro.core import clean_loop_counts, make_plan, median_reliable, sfft
from repro.errors import ParameterError
from repro.signals import make_sparse_signal

_N, _K, _SEED = 2048, 5, 1290


@pytest.fixture(scope="module")
def case():
    sig = make_sparse_signal(_N, _K, seed=_SEED, min_separation=_N // (4 * _K))
    plan = make_plan(_N, _K, seed=_SEED ^ 0xABCDEF)
    return sig, plan


def test_regression_2048_5_1290_locations_exact(case):
    sig, plan = case
    res = sfft(sig.time, plan=plan)
    assert set(res.locations.tolist()) == set(sig.locations.tolist())


def test_regression_2048_5_1290_reliability_split(case):
    # The predicate must single out exactly the frequency that breaks the
    # 1e-4 tolerance, and every reliable frequency must meet it.
    sig, plan = case
    assert not plan.filter_capped  # the flake is not the capped-filter mode
    counts = clean_loop_counts(sig.locations, plan.permutations, _N, plan.B)
    reliable = median_reliable(sig.locations, plan.permutations, _N, plan.B)
    by_freq = dict(zip(sig.locations.tolist(), reliable.tolist()))
    assert by_freq[280] is False
    assert counts[sig.locations.tolist().index(280)] == 3
    assert sum(by_freq.values()) == _K - 1

    res = sfft(sig.time, plan=plan)
    truth = dict(zip(sig.locations.tolist(), sig.values))
    for f, v in res.as_dict().items():
        err = abs(v - truth[f]) / abs(truth[f])
        if by_freq[f]:
            assert err < 1e-4
        else:
            # Degraded but bounded: the median still sits between loop
            # estimates, at least one of which is clean per component.
            assert err < 0.35


def test_clean_counts_isolated_support_is_fully_clean():
    # One lone frequency can never collide with anything.
    plan = make_plan(1024, 4, seed=3)
    counts = clean_loop_counts(
        np.array([100]), plan.permutations, 1024, plan.B
    )
    assert counts.tolist() == [len(plan.permutations)]
    assert median_reliable(
        np.array([100]), plan.permutations, 1024, plan.B
    ).all()


def test_clean_counts_same_bucket_pair_never_clean():
    # Two frequencies at permuted distance < n/B in *every* loop: use a
    # pair that is identical mod n/B after any odd sigma? Simpler: f and
    # f itself shifted by 0 is excluded; instead check symmetry — a
    # contaminating pair dirties the same loops for both members.
    plan = make_plan(1024, 4, seed=5)
    freqs = np.array([7, 700, 130])
    counts = clean_loop_counts(freqs, plan.permutations, 1024, plan.B)
    assert counts.shape == (3,)
    assert (counts >= 0).all() and (counts <= len(plan.permutations)).all()


def test_clean_counts_validation():
    plan = make_plan(1024, 4, seed=1)
    assert clean_loop_counts(
        np.array([], dtype=np.int64), plan.permutations, 1024, plan.B
    ).size == 0
    with pytest.raises(ParameterError, match="out of range"):
        clean_loop_counts(np.array([1024]), plan.permutations, 1024, plan.B)
