"""Unit tests for the flat-window filter stack."""

import numpy as np
import pytest
from scipy.signal.windows import chebwin

from repro.errors import FilterDesignError
from repro.filters import (
    FlatFilter,
    analyze_filter,
    chebyshev_support,
    dirichlet_kernel,
    dolph_chebyshev_window,
    gaussian_support,
    gaussian_window,
    make_flat_window,
)


class TestGaussianWindow:
    def test_peak_and_symmetry(self):
        w = gaussian_window(101, 0.01, 1e-6)
        assert w.max() == pytest.approx(1.0)
        assert np.allclose(w, w[::-1])

    def test_tails_reach_tolerance(self):
        tol = 1e-6
        width = gaussian_support(0.01, tol)
        w = gaussian_window(width, 0.01, tol)
        assert w[0] <= tol * 10

    def test_spectrum_meets_stopband_spec(self):
        n, lobefrac, tol = 4096, 0.01, 1e-6
        width = gaussian_support(lobefrac, tol)
        w = gaussian_window(width, lobefrac, tol)
        padded = np.zeros(n)
        padded[:width] = w
        spec = np.abs(np.fft.fft(padded))
        spec /= spec.max()
        edge = int(np.ceil(lobefrac * n))
        # Everything beyond the design lobe must be near tolerance level.
        assert spec[edge + 2 : n - edge - 2].max() < tol * 50

    def test_bad_args(self):
        with pytest.raises(FilterDesignError):
            gaussian_window(2, 0.01, 1e-6)
        with pytest.raises(FilterDesignError):
            gaussian_window(11, 0.7, 1e-6)
        with pytest.raises(FilterDesignError):
            gaussian_window(11, 0.01, 2.0)
        with pytest.raises(FilterDesignError):
            gaussian_support(0.0, 1e-6)


class TestChebyshevWindow:
    @pytest.mark.parametrize("w,tol", [(65, 1e-4), (129, 1e-6), (257, 1e-8)])
    def test_matches_scipy(self, w, tol):
        mine = dolph_chebyshev_window(w, tol)
        ref = chebwin(w, at=-20 * np.log10(tol))
        assert np.abs(mine - ref / ref.max()).max() < 1e-12

    def test_equiripple_sidelobes(self):
        w, tol = 129, 1e-5
        taps = dolph_chebyshev_window(w, tol)
        nfft = 8192
        spec = np.abs(np.fft.fft(taps, nfft))
        spec /= spec.max()
        # Main-lobe edge: |W(nu)| first reaches the ripple level where
        # beta*cos(pi*nu) = 1, i.e. nu0 = acos(1/beta)/pi.
        beta = np.cosh(np.arccosh(1 / tol) / (w - 1))
        nu0 = np.arccos(1 / beta) / np.pi
        main = int(np.ceil(nu0 * nfft)) + 2
        side = spec[main : nfft - main]
        # Side lobes sit at the tolerance level (equiripple), never above.
        assert side.max() == pytest.approx(tol, rel=0.05)
        assert side.max() <= tol * 1.01

    def test_support_formula_sane(self):
        w = chebyshev_support(0.01, 1e-8)
        # ~ (1/pi)/lobefrac * acosh(1e8) ~ 586
        assert 500 < w < 700
        assert w % 2 == 1

    def test_smaller_tolerance_needs_more_taps(self):
        assert chebyshev_support(0.01, 1e-10) > chebyshev_support(0.01, 1e-4)

    def test_rejects_even_length(self):
        with pytest.raises(FilterDesignError):
            dolph_chebyshev_window(64, 1e-6)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(FilterDesignError):
            dolph_chebyshev_window(65, 1.5)


class TestDirichletKernel:
    def test_peak_value(self):
        d = dirichlet_kernel(np.array([0.0]), 7, 64)
        assert d[0] == pytest.approx(7.0)

    def test_matches_sum_of_exponentials(self):
        n, b = 64, 5
        t = np.arange(-10, 11, dtype=float)
        direct = sum(
            np.exp(2j * np.pi * d * t / n) for d in range(-(b // 2), b // 2 + 1)
        )
        assert np.abs(dirichlet_kernel(t, b, n) - direct.real).max() < 1e-9

    def test_even_width_rejected(self):
        with pytest.raises(FilterDesignError):
            dirichlet_kernel(np.zeros(1), 4, 64)


class TestFlatWindow:
    @pytest.mark.parametrize("window", ["dolph-chebyshev", "gaussian"])
    def test_passband_flat_and_stopband_clean(self, window):
        n, B = 4096, 64
        f = make_flat_window(n, B, window=window, tolerance=1e-8)
        rep = analyze_filter(f, B)
        assert rep.passband_ripple < 1e-4
        assert rep.stopband_max < 1e-5
        assert rep.passband_min > 0.9

    def test_freq_is_exact_dft_of_taps(self):
        n, B = 2048, 32
        f = make_flat_window(n, B)
        padded = np.zeros(n, dtype=complex)
        padded[: f.width] = f.time
        assert np.abs(np.fft.fft(padded) - f.freq).max() < 1e-12

    def test_pad_to_multiple(self):
        n, B = 2048, 32
        f = make_flat_window(n, B, pad_to_multiple=B)
        assert f.width % B == 0
        assert f.width <= n

    def test_support_much_smaller_than_n(self):
        n, B = 1 << 16, 64
        f = make_flat_window(n, B)
        assert f.width < n // 4

    def test_support_capped_at_n(self):
        # Tiny n with large B forces the cap; filter still valid.
        f = make_flat_window(64, 16)
        assert f.width <= 64
        assert np.isfinite(np.abs(f.freq)).all()

    def test_response_at_wraps_negative_offsets(self):
        f = make_flat_window(1024, 32)
        vals = f.response_at(np.array([-1, 0, 1]))
        assert vals.shape == (3,)
        assert abs(vals[1]) > 0.9

    def test_passband_halfwidth_covers_bucket(self):
        n, B = 4096, 64
        f = make_flat_window(n, B)
        assert f.passband_halfwidth() >= n // (2 * B)

    def test_invalid_args(self):
        with pytest.raises(FilterDesignError):
            make_flat_window(100, 7)  # B does not divide n
        with pytest.raises(FilterDesignError):
            make_flat_window(64, 1)
        with pytest.raises(FilterDesignError):
            make_flat_window(1024, 32, window="hann")
        with pytest.raises(FilterDesignError):
            make_flat_window(1024, 32, tolerance=0.0)
        with pytest.raises(FilterDesignError):
            make_flat_window(2, 2)

    def test_flatfilter_validates_shapes(self):
        with pytest.raises(FilterDesignError):
            FlatFilter(
                n=16,
                time=np.zeros(4, complex),
                freq=np.zeros(8, complex),
                window_name="gaussian",
                lobefrac=0.1,
                tolerance=1e-6,
                box_width=3,
            )

    def test_gaussian_needs_more_taps_than_chebyshev(self):
        # Chebyshev is optimal: for the same spec it needs fewer taps.
        g = make_flat_window(1 << 14, 64, window="gaussian")
        c = make_flat_window(1 << 14, 64, window="dolph-chebyshev")
        assert c.width <= g.width
