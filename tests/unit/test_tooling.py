"""Unit tests for the tooling surface: timeline rendering, plan
serialization, the package demo CLI."""

import numpy as np
import pytest

from repro.core import load_plan, make_plan, save_plan, sfft
from repro.cusim import (
    KEPLER_K20X,
    GpuSimulation,
    KernelSpec,
    TimelineReport,
    render_timeline,
)
from repro.errors import ParameterError
from repro.signals import make_sparse_signal


def _small_report():
    sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
    s1, s2 = sim.stream(), sim.stream()
    sim.launch(s1, KernelSpec("alpha_kernel", 56, 256, flops_per_thread=1e5))
    sim.launch(s2, KernelSpec("beta_kernel", 56, 256, flops_per_thread=1e5))
    sim.memcpy(s1, 1 << 20, "d2h")
    return sim.run()


class TestRenderTimeline:
    def test_contains_streams_and_legend(self):
        out = render_timeline(_small_report())
        assert "s0" in out and "s1" in out
        assert "legend:" in out
        assert "alpha_kernel" in out and "beta_kernel" in out

    def test_distinct_symbols_per_kernel(self):
        out = render_timeline(_small_report())
        legend = out.splitlines()[-1]
        # Two kernels, two distinct symbols.
        syms = [part.split("=")[0].strip() for part in legend.split(",")[:2]]
        assert len(set(syms)) == 2

    def test_transfer_marker(self):
        out = render_timeline(_small_report())
        assert ">" in out

    def test_empty_report(self):
        assert "empty" in render_timeline(TimelineReport(makespan_s=0.0))

    def test_max_rows_summarizes(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        for _ in range(6):
            sim.launch(
                sim.stream(), KernelSpec("k", 1, 32, flops_per_thread=100)
            )
        out = render_timeline(sim.run(), max_rows=3)
        assert "more streams" in out

    def test_width_respected(self):
        out = render_timeline(_small_report(), width=40)
        for line in out.splitlines():
            if line.startswith("s") and "|" in line:
                body = line.split("|")[1]
                assert len(body) == 40


class TestPlanSerialization:
    def test_roundtrip_identical_results(self, tmp_path):
        plan = make_plan(1 << 12, 8, seed=1)
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        plan2 = load_plan(path)
        sig = make_sparse_signal(1 << 12, 8, seed=2)
        a = sfft(sig.time, plan=plan)
        b = sfft(sig.time, plan=plan2)
        assert (a.locations == b.locations).all()
        assert np.array_equal(a.values, b.values)

    def test_roundtrip_preserves_parameters(self, tmp_path):
        plan = make_plan(1 << 12, 8, seed=3, loops=5, window="gaussian")
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        plan2 = load_plan(path)
        assert plan2.params == plan.params
        assert np.array_equal(plan2.filt.time, plan.filt.time)
        assert [p.sigma for p in plan2.permutations] == [
            p.sigma for p in plan.permutations
        ]

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, schema=np.array([99]))
        with pytest.raises(ParameterError):
            load_plan(path)


class TestPackageDemo:
    def test_demo_runs_and_verifies(self, capsys):
        from repro.__main__ import main

        assert main(["12", "4"]) == 0
        out = capsys.readouterr().out
        assert "recovery: exact" in out
        assert "timeline" in out

    def test_demo_defaults(self, capsys):
        from repro.__main__ import main

        assert main(["14"]) == 0
        assert "2^14" in capsys.readouterr().out
