"""Unit tests for the tooling surface: timeline rendering, plan
serialization, the package demo CLI."""

import numpy as np
import pytest

from repro.core import load_plan, make_plan, save_plan, sfft
from repro.cusim import (
    KEPLER_K20X,
    GpuSimulation,
    KernelSpec,
    TimelineReport,
    render_timeline,
)
from repro.errors import ParameterError
from repro.signals import make_sparse_signal


def _small_report():
    sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
    s1, s2 = sim.stream(), sim.stream()
    sim.launch(s1, KernelSpec("alpha_kernel", 56, 256, flops_per_thread=1e5))
    sim.launch(s2, KernelSpec("beta_kernel", 56, 256, flops_per_thread=1e5))
    sim.memcpy(s1, 1 << 20, "d2h")
    return sim.run()


class TestRenderTimeline:
    def test_contains_streams_and_legend(self):
        out = render_timeline(_small_report())
        assert "s0" in out and "s1" in out
        assert "legend:" in out
        assert "alpha_kernel" in out and "beta_kernel" in out

    def test_distinct_symbols_per_kernel(self):
        out = render_timeline(_small_report())
        legend = out.splitlines()[-1]
        # Two kernels, two distinct symbols.
        syms = [part.split("=")[0].strip() for part in legend.split(",")[:2]]
        assert len(set(syms)) == 2

    def test_transfer_marker(self):
        out = render_timeline(_small_report())
        assert ">" in out

    def test_empty_report(self):
        assert "empty" in render_timeline(TimelineReport(makespan_s=0.0))

    def test_max_rows_summarizes(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        for _ in range(6):
            sim.launch(
                sim.stream(), KernelSpec("k", 1, 32, flops_per_thread=100)
            )
        out = render_timeline(sim.run(), max_rows=3)
        assert "more streams" in out

    def test_width_respected(self):
        out = render_timeline(_small_report(), width=40)
        for line in out.splitlines():
            if line.startswith("s") and "|" in line:
                body = line.split("|")[1]
                assert len(body) == 40

    def test_single_record_timeline(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        sim.launch(sim.stream(), KernelSpec("solo", 56, 256,
                                            flops_per_thread=1e5))
        out = render_timeline(sim.run())
        assert "s0" in out and "solo" in out

    def test_zero_duration_op_renders(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        sim.launch(s, KernelSpec("real", 56, 256, flops_per_thread=1e5))
        sim.host_work(s, "instant", 0.0)
        out = render_timeline(sim.run())
        assert "real" in out  # no crash, kernel still painted

    def test_many_kernel_names_unique_symbols(self):
        # Far more distinct names than any single preference letter could
        # cover: every assigned symbol must still be unique.
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        for i in range(40):
            sim.launch(s, KernelSpec(f"k_{i:02d}", 1, 32,
                                     flops_per_thread=100))
        out = render_timeline(sim.run(), max_rows=50)
        legend = out.splitlines()[-1]
        entries = [p.strip() for p in legend.replace("legend: ", "")
                   .split(", ")]
        syms = [e.split("=")[0] for e in entries if "=" in e
                and not e.startswith("<") and not e.startswith(">")]
        assert len(syms) == len(set(syms)), f"duplicate symbols: {syms}"

    def test_symbol_overflow_grouped_not_ambiguous(self):
        # More kernel names than the whole symbol pool: overflow names
        # share '?' and the legend says so once, instead of listing
        # ambiguous duplicate entries.
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        for i in range(90):
            sim.launch(s, KernelSpec(f"x{i:03d}", 1, 32,
                                     flops_per_thread=100))
        out = render_timeline(sim.run(), max_rows=100)
        legend = out.splitlines()[-1]
        assert legend.count("?=") == 1
        assert "more kernels" in legend

    def _legend_for(self, n_names):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        for i in range(n_names):
            sim.launch(s, KernelSpec(f"x{i:03d}", 1, 32,
                                     flops_per_thread=100))
        return render_timeline(sim.run(), max_rows=100).splitlines()[-1]

    def test_pool_boundary_exact_fit_has_no_overflow(self):
        # The symbol pool holds exactly 75 glyphs (26+26+10+13); with
        # exactly that many distinct kernel names every name still gets
        # its own symbol and no overflow group appears.
        legend = self._legend_for(75)
        assert "?=" not in legend
        # Every entry is "<one-char symbol>=<name>" (the pool itself
        # contains '='), so the symbol is always the first character.
        syms = [e[0] for e in legend.replace("legend: ", "").split(", ")
                if "=" in e and not e.startswith("<")
                and not e.startswith(">")]
        assert len(syms) == 75 and len(set(syms)) == 75

    def test_pool_boundary_one_past_overflows_by_one(self):
        legend = self._legend_for(76)
        assert "?=1 more kernels" in legend
        assert legend.count("?=") == 1

    def test_symbol_assignment_deterministic(self):
        a = render_timeline(_small_report())
        b = render_timeline(_small_report())
        assert a.splitlines()[-1] == b.splitlines()[-1]


class TestPlanSerialization:
    def test_roundtrip_identical_results(self, tmp_path):
        plan = make_plan(1 << 12, 8, seed=1)
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        plan2 = load_plan(path)
        sig = make_sparse_signal(1 << 12, 8, seed=2)
        a = sfft(sig.time, plan=plan)
        b = sfft(sig.time, plan=plan2)
        assert (a.locations == b.locations).all()
        assert np.array_equal(a.values, b.values)

    def test_roundtrip_preserves_parameters(self, tmp_path):
        plan = make_plan(1 << 12, 8, seed=3, loops=5, window="gaussian")
        path = tmp_path / "plan.npz"
        save_plan(plan, path)
        plan2 = load_plan(path)
        assert plan2.params == plan.params
        assert np.array_equal(plan2.filt.time, plan.filt.time)
        assert [p.sigma for p in plan2.permutations] == [
            p.sigma for p in plan.permutations
        ]

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, schema=np.array([99]))
        with pytest.raises(ParameterError):
            load_plan(path)


class TestPackageDemo:
    def test_demo_runs_and_verifies(self, capsys):
        from repro.__main__ import main

        assert main(["12", "4"]) == 0
        out = capsys.readouterr().out
        assert "recovery: exact" in out
        assert "timeline" in out

    def test_demo_defaults(self, capsys):
        from repro.__main__ import main

        assert main(["14"]) == 0
        assert "2^14" in capsys.readouterr().out

    def test_malformed_n_log2_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["not_a_number"]) == 2
        assert "n_log2 must be an integer" in capsys.readouterr().err

    def test_malformed_k_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["12", "sixty-four"]) == 2
        assert "k must be an integer" in capsys.readouterr().err

    def test_out_of_range_n_log2_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["99"]) == 2
        assert "n_log2 must be in" in capsys.readouterr().err

    def test_k_not_below_n_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["4", "16"]) == 2
        assert "must be smaller than n" in capsys.readouterr().err


class TestCheckBenchJson:
    """The scripts/check_bench_json.py artifact validator."""

    @staticmethod
    def _load():
        import importlib.util
        from pathlib import Path

        path = (Path(__file__).resolve().parents[2] / "scripts"
                / "check_bench_json.py")
        spec = importlib.util.spec_from_file_location("check_bench_json", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_valid_jsonl_passes(self, tmp_path, capsys):
        from repro.obs import Tracer, make_run_record, write_jsonl

        mod = self._load()
        path = tmp_path / "runs.jsonl"
        write_jsonl(path, make_run_record("x", tracer=Tracer()))
        assert mod.main([str(path)]) == 0

    def test_invalid_jsonl_fails(self, tmp_path, capsys):
        mod = self._load()
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "wrong"}\nnot json at all\n')
        assert mod.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "schema" in err and "not JSON" in err

    def test_bench_json_pytest_benchmark_shape(self, tmp_path):
        import json

        mod = self._load()
        good = tmp_path / "BENCH_fig5a.json"
        good.write_text(json.dumps(
            {"benchmarks": [{"name": "b", "stats": {"mean": 1.0}}]}
        ))
        assert mod.main([str(good)]) == 0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"benchmarks": [{"no_name": 1}]}))
        assert mod.main([str(bad)]) == 1

    def test_missing_file_is_usage_error(self, capsys):
        mod = self._load()
        assert mod.main(["/nonexistent/nope.jsonl"]) == 2

    def test_baseline_schema_validated(self, tmp_path, capsys):
        import json

        from repro.obs import Tracer, make_baseline, make_run_record

        mod = self._load()
        doc = make_baseline([make_run_record(
            "x", tracer=Tracer(), results={"l1_error_per_coeff": 1e-9}
        )])
        good = tmp_path / "BENCH_BASELINE.json"
        good.write_text(json.dumps(doc))
        assert mod.main([str(good)]) == 0
        # Corrupt one stat: the failure message names the offending
        # entry key and metric, not just "invalid file".
        key = next(iter(doc["entries"]))
        for stat in doc["entries"][key]["metrics"].values():
            stat["median"] = "fast"
        bad = tmp_path / "bad_base.json"
        bad.write_text(json.dumps(doc))
        assert mod.main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert key in err and "median" in err

    def test_trajectory_schema_validated(self, tmp_path, capsys):
        import json

        mod = self._load()
        doc = {"schema": "repro.trajectory/1",
               "points": [{"key": "a", "metrics": {"m": 1.0}},
                          {"key": "", "metrics": {}}]}
        path = tmp_path / "BENCH_TRAJECTORY.json"
        path.write_text(json.dumps(doc))
        assert mod.main([str(path)]) == 1
        assert "points[1]" in capsys.readouterr().err
        doc["points"].pop()
        path.write_text(json.dumps(doc))
        assert mod.main([str(path)]) == 0
