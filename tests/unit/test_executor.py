"""Unit tests: the sharded executor's contract and instrumentation.

Bit-identity to the serial fused engine is the headline (the property
suite covers the full matrix; here one quick case per axis), plus the
structural pieces: shard geometry, metrics family, per-worker trace
tracks, strict errors naming global stack rows, and the ``sfft_batch``
integration surface.
"""

import numpy as np
import pytest

from repro.core import ShardedExecutor, sfft_batch, sfft_batch_fused
from repro.core.executor import EXECUTOR_TRACK
from repro.errors import ParameterError, RecoveryError
from repro.obs import MetricsRegistry, Tracer
from repro.signals import make_sparse_signal
from tests.conftest import cached_plan

_N, _K, _S = 2048, 4, 7


@pytest.fixture(scope="module")
def plan():
    return cached_plan(_N, _K)


@pytest.fixture(scope="module")
def stack():
    return np.stack([
        make_sparse_signal(_N, _K, seed=50 + t).time for t in range(_S)
    ])


def _assert_identical(got, want):
    assert len(got) == len(want)
    for s, (g, w) in enumerate(zip(got, want)):
        np.testing.assert_array_equal(g.locations, w.locations,
                                      err_msg=f"signal {s}: support")
        np.testing.assert_array_equal(g.values, w.values,
                                      err_msg=f"signal {s}: values")
        np.testing.assert_array_equal(g.votes, w.votes,
                                      err_msg=f"signal {s}: votes")


def test_bit_identical_to_serial_fused(stack, plan):
    serial = sfft_batch_fused(stack, plan)
    for workers, shard_size in [(1, None), (2, 3), (4, 1), (2, _S)]:
        ex = ShardedExecutor(workers=workers, shard_size=shard_size)
        _assert_identical(ex.run(stack, plan), serial)


def test_bit_identical_with_comb_masks(stack, plan):
    kwargs = dict(comb_width=_N >> 4, seed=9)
    serial = sfft_batch_fused(stack, plan, **kwargs)
    got = ShardedExecutor(workers=2, shard_size=2).run(
        stack, plan, **kwargs
    )
    _assert_identical(got, serial)


def test_shard_bounds_cover_and_partition(plan):
    ex = ShardedExecutor(workers=4)
    bounds = ex.shard_bounds(10)
    # Default size: ceil(10 / 8) = 2 -> five shards, two per... queue.
    assert bounds[0] == (0, 2)
    assert bounds[-1][1] == 10
    covered = [i for lo, hi in bounds for i in range(lo, hi)]
    assert covered == list(range(10))

    assert ShardedExecutor(workers=1, shard_size=3).shard_bounds(7) == [
        (0, 3), (3, 6), (6, 7)
    ]
    with pytest.raises(ParameterError):
        ex.shard_bounds(0)


def test_constructor_validation():
    with pytest.raises(ParameterError, match="workers"):
        ShardedExecutor(workers=0)
    with pytest.raises(ParameterError, match="shard_size"):
        ShardedExecutor(shard_size=0)
    with pytest.raises(ParameterError, match="fft_workers"):
        ShardedExecutor(fft_workers=0)
    with pytest.raises(ParameterError, match="unknown FFT backend"):
        ShardedExecutor(fft_backend="no-such-backend")


def test_metrics_family_published(stack, plan):
    registry = MetricsRegistry()
    ex = ShardedExecutor(workers=2, shard_size=2)
    ex.run(stack, plan, metrics=registry)
    snap = registry.snapshot()
    assert snap["sfft.executor.workers"]["value"] == 2
    assert snap["sfft.executor.shards"]["value"] == 4  # ceil(7/2)
    assert snap["sfft.executor.signals"]["value"] == _S
    assert snap["sfft.executor.queue_wait_s"]["count"] == 4
    assert snap["sfft.executor.shard_wall_s"]["count"] == 4
    assert snap["sfft.executor.run_wall_s"]["count"] == 1
    assert snap["sfft.executor.overlap_ratio"]["value"] > 0


def test_queue_wait_percentile_gauges(stack, plan):
    registry = MetricsRegistry()
    ShardedExecutor(workers=2, shard_size=2).run(
        stack, plan, metrics=registry
    )
    snap = registry.snapshot()
    p50 = snap["sfft.executor.queue_wait_p50_s"]["value"]
    p90 = snap["sfft.executor.queue_wait_p90_s"]["value"]
    p99 = snap["sfft.executor.queue_wait_p99_s"]["value"]
    assert 0 <= p50 <= p90 <= p99


def test_overlap_ratio_clamped_for_one_worker(stack, plan):
    registry = MetricsRegistry()
    ShardedExecutor(workers=1, shard_size=2).run(
        stack, plan, metrics=registry
    )
    overlap = registry.snapshot()["sfft.executor.overlap_ratio"]["value"]
    assert 0.0 <= overlap <= 1.0  # a serial run cannot "overlap"


def test_spans_land_on_worker_tracks(stack, plan):
    tracer = Tracer()
    ShardedExecutor(workers=2, shard_size=2).run(
        stack, plan, tracer=tracer, comb_width=_N >> 4, seed=3,
    )
    tracks = {sp.track for sp in tracer.spans}
    workers_seen = {t for t in tracks if t.startswith("worker")}
    assert workers_seen  # at least one worker track
    assert workers_seen <= {"worker0", "worker1"}
    assert EXECUTOR_TRACK in tracks  # the serial comb span

    shard_totals = [sp for sp in tracer.spans
                    if sp.name.startswith("shard")
                    and "." not in sp.name]
    assert len(shard_totals) == 4
    assert sum(sp.attrs["signals"] for sp in shard_totals) == _S
    # Each shard emits its five stage spans at depth 1 on the same track.
    stage_spans = [sp for sp in tracer.spans
                   if "." in sp.name and sp.name != "executor.run"]
    assert {sp.name.split(".", 1)[1] for sp in stage_spans} == {
        "perm_filter", "bucket_fft", "cutoff", "recovery", "estimation"
    }
    assert all(sp.depth == 1 for sp in stage_spans)


def test_span_dag_attrs_and_root(stack, plan):
    tracer = Tracer()
    ShardedExecutor(workers=2, shard_size=2).run(stack, plan, tracer=tracer)

    roots = [sp for sp in tracer.spans if sp.name == "executor.run"]
    assert len(roots) == 1
    root = roots[0]
    assert root.track == EXECUTOR_TRACK and root.start_s == 0.0
    assert root.attrs["workers"] == 2 and root.attrs["signals"] == _S
    # The root covers every shard span: the critical-path DAG contract.
    shard_spans = [sp for sp in tracer.spans
                   if sp.name.startswith("shard") and "." not in sp.name]
    assert all(sp.start_s + sp.duration_s <= root.duration_s + 1e-9
               for sp in shard_spans)

    for sp in shard_spans:
        assert sp.attrs["parent"] == "executor.run"
        assert sp.attrs["shard"] == int(sp.name[len("shard"):])
        assert sp.attrs["worker"] in (0, 1)
        assert sp.attrs["queue_wait_s"] >= 0.0
    stage_spans = [sp for sp in tracer.spans
                   if "." in sp.name and sp.name != "executor.run"]
    for sp in stage_spans:
        shard = sp.name.split(".", 1)[0]
        assert sp.attrs["parent"] == shard
        assert sp.attrs["shard"] == int(shard[len("shard"):])


def test_strict_error_names_global_signal_index(rng):
    # Pure noise defeats k-sparse voting; with shards of 2, the failure
    # sits in the second shard and must name the global row index 2.
    n = 1024
    small = cached_plan(n, _K)
    X = np.stack([
        make_sparse_signal(n, _K, seed=60 + t).time for t in range(2)
    ] + [rng.standard_normal(n) * 1e-12])
    with pytest.raises(RecoveryError, match="signal 2"):
        ShardedExecutor(workers=2, shard_size=2).run(X, small, strict=True)


def test_sfft_batch_executor_int_shorthand(stack, plan):
    serial = sfft_batch(stack, plan=plan)
    _assert_identical(sfft_batch(stack, plan=plan, executor=2), serial)
    _assert_identical(
        sfft_batch(stack, plan=plan,
                   executor=ShardedExecutor(workers=2, shard_size=3)),
        serial,
    )


def test_sfft_batch_rejects_bad_executor(stack, plan):
    with pytest.raises(ParameterError, match="executor"):
        sfft_batch(stack, plan=plan, executor="four")
    with pytest.raises(ParameterError, match="fft_backend"):
        sfft_batch(stack, plan=plan, executor=2, fft_backend="numpy")
    with pytest.raises(ParameterError, match="fft_workers"):
        sfft_batch(stack, plan=plan, executor=2, fft_workers=2)


def test_executor_reusable_across_runs(stack, plan):
    ex = ShardedExecutor(workers=2)
    serial = sfft_batch_fused(stack, plan)
    _assert_identical(ex.run(stack, plan), serial)
    _assert_identical(ex.run(stack, plan), serial)
    other = np.stack([
        make_sparse_signal(_N, _K, seed=90 + t).time for t in range(3)
    ])
    _assert_identical(ex.run(other, plan), sfft_batch_fused(other, plan))
