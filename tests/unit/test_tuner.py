"""Unit tests for the measured auto-tuner (repro.tune)."""

from __future__ import annotations

import json

import pytest

from repro.core.parameters import derive_parameters
from repro.errors import ParameterError
from repro.tune import (
    Candidate,
    TuneConfig,
    WorkloadClass,
    candidate_from_config,
    generate_candidates,
    measure_candidate,
    tune_class,
    validate_wisdom_record,
)
from repro.tune.cli import tune_main
from repro.tune.tuner import _beats_default, _probe_signals

N, K = 4096, 4
TINY = TuneConfig(trials=2, probes=1, reps=1)


@pytest.fixture(autouse=True)
def clean_resolution_env(monkeypatch):
    """The tuner measures raw configs; ambient pins would skew probes."""
    for var in ("REPRO_WISDOM", "REPRO_SFFT_B", "REPRO_SFFT_LOOPS"):
        monkeypatch.delenv(var, raising=False)


class TestWorkloadClass:
    def test_key_round_trips(self):
        wc = WorkloadClass(N, K, "noisy", 8)
        assert wc.key == f"n={N}|k={K}|noise=noisy|batch=8"

    def test_bad_axes_rejected(self):
        with pytest.raises(ParameterError):
            WorkloadClass(N, K, "quiet")
        with pytest.raises(ParameterError):
            WorkloadClass(N, K, batch_size=0)


class TestCandidate:
    def test_default_has_no_overrides(self):
        cand = Candidate()
        assert cand.is_default
        assert cand.plan_overrides(N, K) == {}
        assert cand.label() == "default"

    def test_b_scale_keeps_powers_of_two_in_range(self):
        base = derive_parameters(N, K).B
        half = Candidate(B_scale=0.5).plan_overrides(N, K)["B"]
        assert half == base // 2
        tiny = Candidate(B_scale=1e-9).plan_overrides(N, K)["B"]
        assert tiny == 2
        huge = Candidate(B_scale=1e9).plan_overrides(N, K)["B"]
        assert huge == N // 2

    def test_resolved_matches_derivation(self):
        cand = Candidate(loops=6)
        assert cand.resolved(N, K)["loops"] == 6

    def test_config_round_trips_through_candidate_from_config(self):
        cand = Candidate(B_scale=0.5, loops=6, workers=2,
                         executor_mode="thread")
        assert candidate_from_config(cand.config()) == cand

    def test_labels_name_every_axis(self):
        label = Candidate(B_scale=0.5, loops=6, comb_width=64,
                          executor_mode="process", workers=2).label()
        for bit in ("B*0.5", "L=6", "comb=64", "processx2"):
            assert bit in label


class TestGenerateCandidates:
    def test_default_is_always_first(self):
        for wc in (WorkloadClass(N, K), WorkloadClass(N, K, batch_size=8)):
            cands = generate_candidates(wc)
            assert cands[0].is_default
            assert len(cands) == len(set(cands))  # deduped

    def test_single_classes_have_no_executor_axes(self):
        for cand in generate_candidates(WorkloadClass(N, K)):
            assert cand.executor_mode is None and cand.workers == 1

    def test_batch_classes_add_executor_axes(self):
        cands = generate_candidates(WorkloadClass(N, K, batch_size=8))
        assert any(c.workers > 1 for c in cands)

    def test_budget_truncates_but_keeps_default(self):
        cands = generate_candidates(WorkloadClass(N, K), budget=2)
        assert len(cands) == 2 and cands[0].is_default


class TestMeasurement:
    def test_default_candidate_is_exact_on_probes(self):
        wc = WorkloadClass(N, K)
        xs, truths = _probe_signals(wc, TINY, 2016)
        stats = measure_candidate(wc, Candidate(), xs, truths, TINY,
                                  seed=2016)
        assert stats.exact
        assert stats.median_s > 0 and len(stats.samples) == TINY.trials

    def test_beats_default_needs_a_real_margin(self):
        from repro.tune.tuner import CandidateStats

        default = CandidateStats(Candidate(), "default", median_s=1.0,
                                 iqr_s=0.0, exact=True)
        config = TuneConfig(threshold=0.05, iqr_factor=1.5, min_abs_s=0.0)
        fast = CandidateStats(Candidate(loops=6), "L=6", median_s=0.90,
                              iqr_s=0.0, exact=True)
        slowish = CandidateStats(Candidate(loops=6), "L=6", median_s=0.97,
                                 iqr_s=0.0, exact=True)
        noisy = CandidateStats(Candidate(loops=6), "L=6", median_s=0.90,
                               iqr_s=0.10, exact=True)
        assert _beats_default(fast, default, config)
        assert not _beats_default(slowish, default, config)  # < threshold
        assert not _beats_default(noisy, default, config)    # < IQR band

    def test_inexact_candidate_cannot_win(self):
        # B clamped down to 2 buckets with k=4 collides almost surely;
        # whatever its speed, the exactness screen must reject it.
        wc = WorkloadClass(N, K)
        outcome = tune_class(
            wc, config=TINY,
            candidates=[Candidate(), Candidate(B_scale=1e-9)],
            seed=2016,
        )
        inexact = [s for s in outcome.ranking if not s.exact]
        assert outcome.winner.candidate.is_default or all(
            s.exact for s in outcome.ranking
        )
        if inexact:
            assert outcome.winner.candidate != inexact[0].candidate


class TestTuneClass:
    def test_outcome_record_is_schema_valid(self):
        outcome = tune_class(WorkloadClass(N, K), config=TINY, budget=2,
                             seed=2016)
        record = dict(outcome.record)
        record["version"] = 1
        assert validate_wisdom_record(record) == []
        assert outcome.record["class"] == WorkloadClass(N, K).key
        assert outcome.default.candidate.is_default

    def test_winner_defaults_without_contenders(self):
        outcome = tune_class(WorkloadClass(N, K), config=TINY,
                             candidates=[Candidate()], seed=2016)
        assert not outcome.improved
        assert outcome.winner is outcome.default

    def test_trial_budget_validated(self):
        with pytest.raises(ParameterError):
            TuneConfig(trials=0)
        with pytest.raises(ParameterError):
            TuneConfig(reps=0)


class TestTuneCli:
    def test_dry_run_writes_nothing_and_ranks(self, tmp_path, capsys):
        store = tmp_path / "W.json"
        code = tune_main([
            "--class", "12:4", "--trials", "2", "--budget", "2",
            "--store", str(store), "--dry-run", "--json",
        ])
        assert code == 0
        assert not store.exists()
        out, err = capsys.readouterr()
        record = json.loads(out.strip().splitlines()[-1])
        assert validate_wisdom_record(record) == []
        assert "rank" in err and "winner" in err

    def test_store_write_appends_monotonic_versions(self, tmp_path,
                                                    capsys):
        store = tmp_path / "W.json"
        argv = ["--class", "12:4", "--trials", "2", "--budget", "2",
                "--store", str(store)]
        assert tune_main(argv) == 0
        assert tune_main(argv) == 0
        lines = [json.loads(s) for s in
                 store.read_text().strip().splitlines()]
        assert [r["version"] for r in lines] == [1, 2]
        assert all(validate_wisdom_record(r) == [] for r in lines)

    def test_malformed_class_is_a_usage_error(self, capsys):
        assert tune_main(["--class", "banana"]) == 2
        assert "class" in capsys.readouterr().err
