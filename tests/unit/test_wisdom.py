"""Unit tests for the ``repro.wisdom/1`` store and its validator."""

from __future__ import annotations

import json

import pytest

from repro.core.parameters import derive_parameters
from repro.errors import ParameterError
from repro.tune import (
    WISDOM_SCHEMA,
    WisdomStore,
    class_key,
    clear_wisdom_cache,
    config_fingerprint,
    is_stale,
    load_wisdom,
    lookup_records,
    parse_class_key,
    validate_wisdom_record,
    wisdom_overrides,
)

N, K = 1024, 4


def make_record(n=N, k=K, *, loops=6, noise="exact", batch=1, version=None,
                **config_extra):
    """A schema-valid wisdom record whose fingerprint is fresh."""
    params = derive_parameters(n, k, loops=loops)
    resolved = {"B": int(params.B), "loops": int(params.loops)}
    record = {
        "schema": WISDOM_SCHEMA,
        "class": class_key(n, k, noise, batch),
        "config": {"loops": loops, **config_extra},
        "resolved": resolved,
        "fingerprint": config_fingerprint(n, k, dict(resolved)),
    }
    if version is not None:
        record["version"] = version
    return record


class TestClassKey:
    def test_round_trip(self):
        key = class_key(16384, 8, "noisy", 32)
        assert key == "n=16384|k=8|noise=noisy|batch=32"
        assert parse_class_key(key) == (16384, 8, "noisy", 32)

    def test_malformed_keys_raise(self):
        with pytest.raises(ParameterError):
            class_key(N, K, "NOISY")  # uppercase slug
        with pytest.raises(ParameterError):
            parse_class_key("n=1024|k=4")
        with pytest.raises(ParameterError):
            parse_class_key(42)


class TestFingerprint:
    def test_deterministic_and_override_sensitive(self):
        a = config_fingerprint(N, K, {"loops": 6})
        assert a == config_fingerprint(N, K, {"loops": 6})
        assert a != config_fingerprint(N, K, {"loops": 8})
        assert a != config_fingerprint(2 * N, K, {"loops": 6})
        assert len(a) == 16 and int(a, 16) >= 0

    def test_equivalent_spellings_share_a_fingerprint(self):
        # The digest hashes the *resolved* parameter tuple, so a config
        # that derives the default loops matches the bare derivation.
        default_loops = derive_parameters(N, K).loops
        assert config_fingerprint(N, K, {}) == config_fingerprint(
            N, K, {"loops": default_loops}
        )


class TestValidator:
    def test_fresh_record_is_valid(self):
        assert validate_wisdom_record(make_record(version=1)) == []

    def test_unknown_keys_rejected(self):
        record = make_record(version=1)
        record["vibe"] = "good"
        assert any("unknown keys" in p
                   for p in validate_wisdom_record(record))

    def test_missing_required_keys_named(self):
        record = make_record(version=1)
        del record["fingerprint"]
        assert any("fingerprint" in p
                   for p in validate_wisdom_record(record))

    def test_malformed_class_key_rejected(self):
        record = make_record(version=1)
        record["class"] = "n=1024;k=4"
        assert any("class" in p for p in validate_wisdom_record(record))

    def test_bad_versions_rejected(self):
        for bad in (0, -1, 1.5, True, "1"):
            record = make_record(version=1)
            record["version"] = bad
            assert any("version" in p
                       for p in validate_wisdom_record(record)), bad

    def test_config_checked(self):
        record = make_record(version=1)
        record["config"] = {"B_scale": -1.0, "executor_mode": "fiber",
                            "bogus": 3}
        problems = "\n".join(validate_wisdom_record(record))
        assert "B_scale" in problems
        assert "executor_mode" in problems
        assert "unknown keys" in problems

    def test_resolved_must_be_positive_ints(self):
        record = make_record(version=1)
        record["resolved"] = {"B": 0, "loops": "six"}
        problems = "\n".join(validate_wisdom_record(record))
        assert "resolved.B" in problems and "resolved.loops" in problems

    def test_non_dict_is_one_problem(self):
        assert validate_wisdom_record([1, 2]) \
            == ["wisdom record must be a JSON object"]


class TestStaleness:
    def test_fresh_record_is_not_stale(self):
        assert not is_stale(make_record(), N, K)

    def test_tampered_fingerprint_is_stale(self):
        record = make_record()
        record["fingerprint"] = "0" * 16
        assert is_stale(record, N, K)

    def test_invalid_overrides_are_stale_not_raising(self):
        record = make_record()
        record["resolved"] = {"B": 3, "loops": 6}  # non-power-of-two B
        assert is_stale(record, N, K)

    def test_wisdom_overrides_uses_resolved_values(self):
        record = make_record(loops=6)
        ov = wisdom_overrides(record)
        assert ov == {"B": record["resolved"]["B"], "loops": 6}


class TestLookup:
    def test_highest_version_wins(self):
        records = [make_record(version=1, loops=6),
                   make_record(version=2, loops=8)]
        hit = lookup_records(records, N, K)
        assert hit is not None and hit["version"] == 2

    def test_batch_falls_back_to_single(self):
        records = [make_record(version=1)]
        assert lookup_records(records, N, K, batch_size=16) is not None

    def test_exact_batch_beats_fallback(self):
        records = [make_record(version=1, loops=6),
                   make_record(version=1, loops=8, batch=16)]
        hit = lookup_records(records, N, K, batch_size=16)
        assert hit["class"].endswith("batch=16")

    def test_no_match_is_none(self):
        assert lookup_records([make_record()], N, 2 * K) is None
        assert lookup_records([make_record()], N, K,
                              noise_class="noisy") is None


class TestWisdomStore:
    def test_missing_file_loads_empty(self, tmp_path):
        assert WisdomStore(str(tmp_path / "none.json")).load() == []

    def test_append_assigns_monotonic_versions(self, tmp_path):
        store = WisdomStore(str(tmp_path / "W.json"))
        first = store.append(make_record())
        second = store.append(make_record(loops=8))
        assert (first["version"], second["version"]) == (1, 2)
        assert store.lookup(N, K)["version"] == 2

    def test_append_rejects_invalid_records(self, tmp_path):
        store = WisdomStore(str(tmp_path / "W.json"))
        record = make_record(version=1)
        record["fingerprint"] = "nope"
        with pytest.raises(ParameterError):
            store.append(record)

    def test_append_rejects_non_monotonic_version(self, tmp_path):
        store = WisdomStore(str(tmp_path / "W.json"))
        store.append(make_record(version=3))
        with pytest.raises(ParameterError, match="non-monotonic"):
            store.append(make_record(version=2))

    def test_load_names_the_offending_line(self, tmp_path):
        path = tmp_path / "W.json"
        good = json.dumps(make_record(version=1))
        path.write_text(good + "\n{not json}\n")
        with pytest.raises(ParameterError, match=r":2:"):
            WisdomStore(str(path)).load()

    def test_load_rejects_non_monotonic_file(self, tmp_path):
        path = tmp_path / "W.json"
        line = json.dumps(make_record(version=1))
        path.write_text(line + "\n" + line + "\n")
        with pytest.raises(ParameterError, match="non-monotonic"):
            WisdomStore(str(path)).load()


class TestConsumptionCache:
    def test_appends_invalidate_the_cache(self, tmp_path):
        path = str(tmp_path / "W.json")
        store = WisdomStore(path)
        store.append(make_record())
        assert len(load_wisdom(path)) == 1
        store.append(make_record(loops=8))
        assert len(load_wisdom(path)) == 2
        clear_wisdom_cache()

    def test_missing_path_is_an_empty_store(self, tmp_path):
        assert load_wisdom(str(tmp_path / "missing.json")) == []
