"""Unit tests for less-travelled GPU timeline paths: unbatched FFT, the
atomic-histogram variant's timeline, h2d gating, kernel-spec details."""

import numpy as np
import pytest

from repro.cusim import KEPLER_K20X, OpKind, estimate_kernel
from repro.errors import ParameterError
from repro.gpu import ATOMIC_HISTOGRAM, BASELINE, OPTIMIZED, CusFFT, CusfftConfig
from repro.gpu.kernels import (
    estimate_spec,
    fast_select_spec,
    recovery_spec,
    score_memset_spec,
    sort_select_specs,
)
from repro.signals import make_sparse_signal

DEV = KEPLER_K20X


class TestTimelineVariants:
    def test_unbatched_fft_launches_more_kernels(self):
        kw = dict(profile="fast", loops=6)
        batched = CusFFT.create(1 << 18, 64, config=OPTIMIZED, **kw)
        looped = CusFFT.create(
            1 << 18, 64, config=OPTIMIZED.with_(batched_fft=False), **kw
        )
        n_b = sum(
            1 for r in batched.modeled_report().records
            if r.name.startswith("cufft_")
        )
        n_l = sum(
            1 for r in looped.modeled_report().records
            if r.name.startswith("cufft_")
        )
        assert n_l == 6 * n_b

    def test_unbatched_fft_slower(self):
        kw = dict(profile="fast", loops=6)
        batched = CusFFT.create(1 << 18, 64, config=OPTIMIZED, **kw).estimated_time()
        looped = CusFFT.create(
            1 << 18, 64, config=OPTIMIZED.with_(batched_fft=False), **kw
        ).estimated_time()
        assert looped > batched

    def test_atomic_variant_timeline_has_atomic_kernel(self):
        t = CusFFT.create(1 << 16, 32, config=ATOMIC_HISTOGRAM)
        names = {r.name for r in t.modeled_report().records}
        assert "cusfft_perm_filter_atomic" in names
        assert "cusfft_perm_filter_partition" not in names

    def test_h2d_gates_binning_start(self):
        t = CusFFT.create(1 << 20, 64, h2d="full", profile="fast")
        rep = t.modeled_report()
        h2d_end = max(r.end_s for r in rep.by_kind(OpKind.H2D))
        first_bin = min(
            r.start_s for r in rep.records
            if r.name.startswith("cusfft_layout_remap")
        )
        assert first_bin >= h2d_end - 1e-12

    def test_memset_overlaps_binning_without_h2d(self):
        t = CusFFT.create(1 << 20, 64, profile="fast")
        rep = t.modeled_report()
        memset = next(r for r in rep.records if r.name == "cusfft_score_memset")
        last_bin = max(
            r.end_s for r in rep.records
            if r.name.startswith("cusfft_layout")
        )
        assert memset.start_s < last_bin  # ran concurrently with binning

    def test_custom_threads_per_block(self):
        cfg = CusfftConfig(layout_transform=True, fast_select=True,
                           threads_per_block=128)
        t = CusFFT.create(1 << 16, 32, config=cfg)
        rep = t.modeled_report()
        assert rep.makespan_s > 0

    def test_functional_with_unbatched_fft(self):
        sig = make_sparse_signal(1 << 12, 8, seed=80)
        t = CusFFT.create(
            1 << 12, 8, config=BASELINE.with_(batched_fft=False)
        )
        run = t.execute(sig.time, seed=81)
        assert set(run.result.locations.tolist()) == set(sig.locations.tolist())


class TestKernelSpecDetails:
    def test_score_memset_traffic(self):
        spec = score_memset_spec(n=1 << 20)
        t = estimate_kernel(spec, DEV)
        assert t.useful_bytes == 2 * (1 << 20)  # int16 scores

    def test_memset_scales_linearly(self):
        small = estimate_kernel(score_memset_spec(n=1 << 20), DEV).memory_s
        big = estimate_kernel(score_memset_spec(n=1 << 24), DEV).memory_s
        assert big == pytest.approx(16 * small, rel=0.1)

    def test_recovery_spec_atomics_scale_with_region(self):
        a = estimate_kernel(
            recovery_spec(selected=100, n_div_B=128, n=1 << 20), DEV
        )
        b = estimate_kernel(
            recovery_spec(selected=100, n_div_B=1024, n=1 << 20), DEV
        )
        assert b.atomic_s > a.atomic_s

    def test_estimate_spec_scales_with_hits(self):
        a = estimate_kernel(estimate_spec(hits=100, loops=6), DEV)
        b = estimate_kernel(estimate_spec(hits=10000, loops=6), DEV)
        assert b.total_s > a.total_s

    def test_fast_select_single_pass(self):
        spec = fast_select_spec(B=1 << 16, expected_selected=1000)
        t = estimate_kernel(spec, DEV)
        # One coalesced read of the buckets dominates the useful traffic.
        assert t.useful_bytes >= (1 << 16) * 16

    def test_sort_specs_pass_count(self):
        specs = sort_select_specs(B=4096)
        assert len(specs) == 32  # 16 passes x (histogram + scatter)
        scatter = [s for s in specs if s.name == "thrust_radix_scatter"]
        assert len(scatter) == 16

    def test_sort_much_more_wire_than_select(self):
        B = 1 << 16
        sort_wire = sum(
            estimate_kernel(s, DEV).wire_bytes for s in sort_select_specs(B=B)
        )
        sel_wire = estimate_kernel(
            fast_select_spec(B=B, expected_selected=1000), DEV
        ).wire_bytes
        assert sort_wire > 10 * sel_wire
