"""Kernel access checker: the race detector and the symbolic analyzer.

The contract under test is Section IV-C's: the conventional histogram
races unless every update is atomic, while Algorithm 2's loop-partition
binner is collision-free with *no* atomics — and the detector must be
able to tell the two apart from the interpreter's memory-event trace,
with the symbolic engine extending the binner's clearance to every
thread count.
"""

import re

import numpy as np
import pytest

from repro.analysis.staticcheck import (
    AffineIndex,
    binner_store_index,
    check_kernel,
    detect_races,
    fit_affine,
    kernel_battery,
    prove_injective,
    prove_loop_partition_binner,
)
from repro.cusim.device import KEPLER_K20X
from repro.cusim.simt import simt_run
from repro.errors import ParameterError
from repro.gpu.kernels import (
    make_atomic_histogram_kernel,
    make_naive_histogram_kernel,
    make_partition_binner_kernel,
)


def _histogram_buffers(num_keys=64, num_buckets=8, seed=7):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, num_buckets, size=num_keys).astype(np.float64)
    return keys, np.zeros(num_buckets, dtype=np.float64)


class TestNaiveHistogramIsFlagged:
    def test_race_findings_with_thread_pair_and_address(self):
        keys, buckets = _histogram_buffers()
        check = check_kernel(
            make_naive_histogram_kernel(), keys.size, KEPLER_K20X,
            keys, buckets,
        )
        races = [f for f in check.findings if f.rule == "kernel-race"]
        assert races, "naive histogram must be flagged"
        assert not check.ok
        # The first finding names the conflicting thread pair and the
        # concrete element/address, so the defect is localizable.
        msg = races[0].message
        pair = re.search(r"between threads (\d+) and (\d+)", msg)
        assert pair, msg
        t1, t2 = int(pair.group(1)), int(pair.group(2))
        assert t1 != t2
        element = re.search(r"element (\d+) \(address 0x[0-9a-f]+\)", msg)
        assert element, msg
        # The named pair really does collide on the named bucket.
        bucket = int(element.group(1))
        assert int(keys[t1]) == bucket and int(keys[t2]) == bucket

    def test_findings_anchor_to_kernel_source(self):
        keys, buckets = _histogram_buffers()
        check = check_kernel(
            make_naive_histogram_kernel(), keys.size, KEPLER_K20X,
            keys, buckets,
        )
        race = next(f for f in check.findings if f.rule == "kernel-race")
        assert race.path == "src/repro/gpu/kernels/histogram.py"
        assert race.line > 0
        assert race.engine == "race"

    def test_conflict_flood_is_capped_with_summary(self):
        # Every thread hits bucket 0: one conflicting element would not
        # exceed the cap, so spread across 4 buckets with 16 threads each.
        keys = np.repeat(np.arange(4), 16).astype(np.float64)
        check = check_kernel(
            make_naive_histogram_kernel(), keys.size, KEPLER_K20X,
            keys, np.zeros(4, dtype=np.float64),
        )
        races = [f for f in check.findings if f.rule == "kernel-race"]
        # 3 detailed findings + 1 summary for the 4th element.
        assert len(races) == 4
        assert "further conflicting element(s)" in races[-1].message


class TestAtomicHistogramPasses:
    def test_no_findings_and_exact_counts(self):
        keys, buckets = _histogram_buffers()
        check = check_kernel(
            make_atomic_histogram_kernel(), keys.size, KEPLER_K20X,
            keys, buckets,
        )
        assert check.ok
        assert not [f for f in check.findings if f.rule == "kernel-race"]
        counts = check.buffers[1].data
        expected = np.bincount(keys.astype(np.int64),
                               minlength=counts.size)
        np.testing.assert_array_equal(counts, expected)
        assert check.report.atomic_ops > 0


class TestPartitionBinnerIsClean:
    B, ROUNDS, SIGMA, TAU, N, WIDTH = 32, 4, 9, 5, 128, 100

    def _run(self):
        rng = np.random.default_rng(11)
        signal = rng.standard_normal(self.N) + 1j * rng.standard_normal(self.N)
        taps = (rng.standard_normal(self.WIDTH)
                + 1j * rng.standard_normal(self.WIDTH))
        kernel = make_partition_binner_kernel(
            B=self.B, rounds=self.ROUNDS, sigma=self.SIGMA, tau=self.TAU,
            n=self.N, width=self.WIDTH,
        )
        return signal, taps, check_kernel(
            kernel, self.B, KEPLER_K20X, signal, taps,
            np.zeros(self.B, dtype=np.complex128),
        )

    def test_trace_clean_and_functionally_correct(self):
        signal, taps, check = self._run()
        assert check.ok
        assert not [f for f in check.findings if f.rule == "kernel-race"]
        assert not [f for f in check.findings if f.rule == "kernel-oob"]
        # Ground truth: serial loop-partition fold.
        expected = np.zeros(self.B, dtype=np.complex128)
        for tid in range(self.B):
            for j in range(self.ROUNDS):
                off = tid + self.B * j
                if off < self.WIDTH:
                    idx = (off * self.SIGMA + self.TAU) % self.N
                    expected[tid] += signal[idx] * taps[off]
        np.testing.assert_allclose(check.buffers[2].data, expected)

    def test_store_schedule_fits_identity_affine(self):
        # Trace -> theorem bridge: the final store event fits
        # (1*tid + 0) mod B, which prove_injective then clears for all B.
        _, _, check = self._run()
        stores = [ev for ev in check.report.events
                  if ev.kind == "store" and not ev.atomic]
        assert stores
        fitted = fit_affine(stores[-1].tids, stores[-1].indices, self.B)
        assert fitted == binner_store_index(self.B)
        assert prove_injective(fitted, self.B).collision_free


class TestOutOfBoundsAndDivergence:
    def test_oob_store_is_flagged(self):
        def oob_kernel(warp, out):
            warp.store(out, warp.tid + 4, np.ones(warp.tid.size))

        check = check_kernel(oob_kernel, 8, KEPLER_K20X,
                             np.zeros(8, dtype=np.float64))
        oob = [f for f in check.findings if f.rule == "kernel-oob"]
        assert oob and not check.ok
        assert "outside [0, 8)" in oob[0].message

    def test_divergent_store_is_warning_not_error(self):
        def divergent_kernel(warp, out):
            warp.push_mask(warp.tid < 4)
            warp.store(out, warp.tid, np.ones(warp.tid.size))
            warp.pop_mask()

        check = check_kernel(divergent_kernel, 8, KEPLER_K20X,
                             np.zeros(8, dtype=np.float64))
        divergent = [f for f in check.findings
                     if f.rule == "kernel-divergent-store"]
        assert divergent
        assert divergent[0].severity == "warning"
        assert check.ok  # warnings never fail a kernel

    def test_detect_races_accepts_bare_event_list(self):
        def racy(warp, out):
            warp.store(out, warp.tid * 0, np.ones(warp.tid.size))

        report, _ = simt_run(racy, 4, KEPLER_K20X,
                             np.zeros(4, dtype=np.float64))
        findings = detect_races(report.events, kernel_name="racy-by-hand")
        assert any(f.rule == "kernel-race" for f in findings)
        assert findings[0].path == "racy-by-hand"


class TestSymbolicProofs:
    def test_injective_iff_within_gcd_bound(self):
        idx = AffineIndex(scale=2, offset=3, modulus=8)
        assert prove_injective(idx, 4).collision_free
        refuted = prove_injective(idx, 5)
        assert not refuted.collision_free
        assert "collide" in refuted.reason

    def test_zero_scale_is_injective_only_solo(self):
        idx = AffineIndex(scale=8, offset=1, modulus=8)  # scale ≡ 0
        assert prove_injective(idx, 1).collision_free
        assert not prove_injective(idx, 2).collision_free

    def test_universal_binner_theorem(self):
        proof = prove_loop_partition_binner()
        assert proof.collision_free and proof.universal
        assert "every B" in proof.reason

    @pytest.mark.parametrize("B", [1, 2, 32, 57, 4096])
    def test_concrete_binner_proofs_agree_with_theorem(self, B):
        proof = prove_loop_partition_binner(B)
        assert proof.collision_free
        assert not proof.universal

    def test_fit_affine_refuses_data_dependent_schedule(self):
        keys, buckets = _histogram_buffers()
        report, _ = simt_run(make_naive_histogram_kernel(), keys.size,
                             KEPLER_K20X, keys, buckets)
        stores = [ev for ev in report.events if ev.kind == "store"]
        assert stores
        assert fit_affine(stores[0].tids, stores[0].indices,
                          buckets.size) is None

    def test_fit_affine_recovers_nontrivial_scale(self):
        tids = np.arange(16)
        idx = AffineIndex(scale=5, offset=2, modulus=64)
        assert fit_affine(tids, idx.evaluate(tids), 64) == idx

    def test_validation_errors(self):
        with pytest.raises(ParameterError):
            AffineIndex(scale=1, offset=0, modulus=0)
        with pytest.raises(ParameterError):
            prove_injective(AffineIndex(1, 0, 8), 0)
        with pytest.raises(ParameterError):
            fit_affine(np.arange(4), np.arange(5), 8)


class TestKernelBattery:
    def test_battery_is_green_on_repo_tip(self):
        assert kernel_battery() == []
