"""Unit tests: concurrency guarantees of the observability layer.

Two promises the docs make that only a stress/boundary test can keep
honest: ``atomic_append_text`` never exposes a torn line to concurrent
writers, and ``FlightRecorder.events(window_s)`` windows on an inclusive
horizon with validated input.
"""

import json
import threading

import pytest

from repro.errors import ParameterError
from repro.obs import FlightRecorder, atomic_append_text


class TestAtomicAppendConcurrent:
    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        """N threads append whole JSON lines; every surviving line parses.

        The copy-append-replace scheme means concurrent appends may *lose*
        each other's records (last replace wins) but must never interleave
        or truncate one — the property the JSONL schema gate depends on.
        """
        path = str(tmp_path / "records.jsonl")
        writers, per_writer = 4, 25
        errors = []

        def writer(wid):
            try:
                for i in range(per_writer):
                    doc = {"writer": wid, "seq": i, "pad": "x" * 256}
                    atomic_append_text(path, json.dumps(doc) + "\n")
            except OSError as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert lines  # at least the last replace survived
        for line in lines:
            doc = json.loads(line)  # a torn line would raise here
            assert set(doc) == {"writer", "seq", "pad"}

    def test_sequential_appends_all_survive(self, tmp_path):
        path = str(tmp_path / "seq.jsonl")
        for i in range(10):
            atomic_append_text(path, f'{{"seq": {i}}}\n')
        with open(path, encoding="utf-8") as fh:
            assert [json.loads(ln)["seq"] for ln in fh] == list(range(10))

    def test_no_leftover_temp_files(self, tmp_path):
        path = str(tmp_path / "clean.jsonl")
        atomic_append_text(path, "{}\n")
        assert [p.name for p in tmp_path.iterdir()] == ["clean.jsonl"]


class TestFlightRecorderWindow:
    def _recorder_at(self, times):
        """Recorder fed one metric event per entry of ``times``."""
        now = {"t": 0.0}
        rec = FlightRecorder(capacity=16, clock=lambda: now["t"])
        for t in times:
            now["t"] = t
            rec.record_metric("sfft.test.v", "gauge", t)
        return rec, now

    def test_window_horizon_is_inclusive(self):
        rec, now = self._recorder_at([1.0, 2.0, 3.0])
        now["t"] = 3.0
        # horizon = 3.0 - 2.0 = 1.0; the event AT the horizon is kept.
        assert [ev.ts_s for ev in rec.events(window_s=2.0)] == [1.0, 2.0, 3.0]
        assert [ev.ts_s for ev in rec.events(window_s=1.0)] == [2.0, 3.0]

    def test_zero_window_keeps_only_now(self):
        rec, now = self._recorder_at([1.0, 2.0])
        now["t"] = 2.0
        assert [ev.ts_s for ev in rec.events(window_s=0.0)] == [2.0]
        now["t"] = 2.5
        assert rec.events(window_s=0.0) == []

    def test_none_returns_everything_retained(self):
        rec, _now = self._recorder_at([1.0, 2.0, 3.0])
        assert len(rec.events()) == 3
        assert len(rec.events(window_s=None)) == 3

    def test_negative_window_raises(self):
        rec, _now = self._recorder_at([1.0])
        with pytest.raises(ParameterError, match="window_s"):
            rec.events(window_s=-0.5)

    def test_window_larger_than_history_keeps_all(self):
        rec, now = self._recorder_at([1.0, 2.0])
        now["t"] = 2.0
        assert len(rec.events(window_s=1e9)) == 2
