"""Unit tests for the per-plan execution workspace and the batch engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PlanWorkspace,
    bin_vectorized,
    permuted_indices,
    sfft,
    sfft_batch_fused,
)
from repro.core.workspace import GATHER_ELEMENT_CAP
from repro.errors import ParameterError
from repro.signals import make_sparse_signal

from tests.conftest import cached_plan


def _signal_stack(n: int, k: int, S: int, *, seed: int = 500) -> np.ndarray:
    return np.stack([
        make_sparse_signal(n, k, seed=seed + t).time for t in range(S)
    ])


class TestWorkspaceArrays:
    def test_plan_caches_one_workspace(self, plan_small):
        assert plan_small.workspace() is plan_small.workspace()

    def test_gather_rows_are_permuted_indices(self, plan_small):
        ws = plan_small.workspace()
        g = ws.gather
        assert g.shape == (ws.loops, ws.rounds * ws.B)
        for r, perm in enumerate(plan_small.permutations):
            np.testing.assert_array_equal(
                g[r], permuted_indices(perm, ws.rounds * ws.B)
            )

    def test_taps_flat_is_a_view_when_already_padded(self, plan_small):
        ws = plan_small.workspace()
        # Plans pad taps to a multiple of B, so no copy is needed.
        assert ws.taps_flat is plan_small.filt.time
        assert ws.taps_matrix.shape == (ws.rounds, ws.B)
        np.testing.assert_array_equal(
            ws.taps_matrix.ravel(), ws.taps_flat
        )

    def test_gather_cap_disables_materialization(self, plan_small):
        ws = PlanWorkspace(plan_small, gather_cap=0)
        assert ws.gather is None
        assert GATHER_ELEMENT_CAP > 0

    def test_gather_cap_fallback_counted(self, plan_small):
        from repro.obs import global_registry

        before = global_registry().counter(
            "sfft.workspace.gather_cap_fallback"
        ).value
        PlanWorkspace(plan_small, gather_cap=0)
        after = global_registry().counter(
            "sfft.workspace.gather_cap_fallback"
        ).value
        assert after == before + 1
        # The materializing path must not touch the counter.
        PlanWorkspace(plan_small)
        assert global_registry().counter(
            "sfft.workspace.gather_cap_fallback"
        ).value == after


class TestWorkspaceClone:
    def test_clone_shares_immutable_arrays(self, plan_small):
        ws = plan_small.workspace()
        twin = ws.clone()
        assert twin is not ws
        assert twin.gather is ws.gather
        assert twin.taps_flat is ws.taps_flat

    def test_clone_has_private_scratch(self, plan_small, rng):
        ws = plan_small.workspace()
        twin = ws.clone()
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        a = ws.bin_fused(x)
        b = twin.bin_fused(x)
        assert a is not b  # distinct scratch buffers
        np.testing.assert_array_equal(a, b)

    def test_clone_rebinds_fft_backend(self, plan_small, rng):
        twin = plan_small.workspace().clone(fft_backend="numpy",
                                            fft_workers=2)
        assert twin.fft_backend == "numpy"
        assert twin.fft_workers == 2
        buckets = (rng.standard_normal((3, 8))
                   + 1j * rng.standard_normal((3, 8)))
        np.testing.assert_array_equal(
            twin.bucket_fft(buckets), np.fft.fft(buckets, axis=-1)
        )

    def test_clone_preserves_gather_cap_fallback(self, plan_small):
        capped = PlanWorkspace(plan_small, gather_cap=0)
        twin = capped.clone()
        assert twin.gather is None


class TestBinFused:
    def test_matches_bin_vectorized_row_for_row(self, plan_small, rng):
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        ws = plan_small.workspace()
        fused = ws.bin_fused(x)
        for r, perm in enumerate(plan_small.permutations):
            np.testing.assert_array_equal(
                fused[r],
                bin_vectorized(x, plan_small.filt, plan_small.B, perm),
            )

    def test_fallback_path_matches_materialized(self, plan_small, rng):
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        fused = plan_small.workspace().bin_fused(x).copy()
        fallback = PlanWorkspace(plan_small, gather_cap=0).bin_fused(x)
        np.testing.assert_array_equal(fused, fallback)

    def test_reuses_plan_scratch(self, plan_small, rng):
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        ws = plan_small.workspace()
        assert ws.bin_fused(x) is ws.raw
        out = np.empty_like(ws.raw)
        assert ws.bin_fused(x, out=out) is out

    def test_stack_rows_match_single(self, plan_small):
        X = _signal_stack(1024, 4, 3)
        ws = plan_small.workspace()
        stack = ws.bin_fused_stack(X)
        for s in range(3):
            np.testing.assert_array_equal(
                stack[s], ws.bin_fused(X[s]).copy()
            )

    def test_stack_fallback_matches(self, plan_small):
        X = _signal_stack(1024, 4, 3)
        full = plan_small.workspace().bin_fused_stack(X)
        fallback = PlanWorkspace(plan_small, gather_cap=0).bin_fused_stack(X)
        np.testing.assert_array_equal(full, fallback)

    def test_shape_validation(self, plan_small, rng):
        ws = plan_small.workspace()
        with pytest.raises(ParameterError):
            ws.bin_fused(np.zeros(512, dtype=np.complex128))
        with pytest.raises(ParameterError):
            ws.bin_fused(np.zeros(1024, dtype=np.complex128),
                         out=np.empty((1, 1), dtype=np.complex128))
        with pytest.raises(ParameterError):
            ws.bin_fused_stack(np.zeros((2, 512), dtype=np.complex128))


class TestBatchEngine:
    def test_matches_per_signal_driver_exactly(self):
        plan = cached_plan(4096, 8)
        X = _signal_stack(4096, 8, 4)
        batch = sfft_batch_fused(X, plan)
        for s in range(4):
            single = sfft(X[s], plan=plan)
            np.testing.assert_array_equal(
                batch[s].locations, single.locations
            )
            np.testing.assert_array_equal(batch[s].values, single.values)
            np.testing.assert_array_equal(batch[s].votes, single.votes)

    def test_single_row_stack(self, plan_small, signal_small):
        res = sfft_batch_fused(signal_small.time[None, :], plan_small)
        assert len(res) == 1
        assert set(res[0].locations.tolist()) == set(
            signal_small.locations.tolist()
        )

    def test_strict_raises_per_signal(self, plan_small, rng):
        from repro.errors import RecoveryError

        # Pure noise: voting cannot reach k coefficients consistently.
        X = np.stack([rng.standard_normal(1024) * 1e-12 for _ in range(2)])
        with pytest.raises(RecoveryError):
            sfft_batch_fused(X, plan_small, strict=True)

    def test_rejects_bad_stack_shapes(self, plan_small):
        with pytest.raises(ParameterError):
            sfft_batch_fused(
                np.zeros((2, 2, 2), dtype=np.complex128), plan_small
            )
