"""Repo-invariant AST rules, suppressions, schema, and the lint CLI.

Each rule gets a positive (flagged) and negative (clean) case; the repo
tip itself must lint clean — that last test is what turns the invariants
from documentation into a gate.
"""

import json
import textwrap

import pytest

from repro.analysis.staticcheck import (
    RULES,
    Finding,
    Suppressions,
    lint_source,
    lint_tree,
    validate_lint_record,
)
from repro.analysis.staticcheck.cli import lint_main
from repro.errors import ParameterError


def _lint(source, relpath="core/example.py"):
    return lint_source(textwrap.dedent(source),
                       path=f"src/repro/{relpath}", relpath=relpath)


def _rules(findings):
    return sorted(f.rule for f in findings)


class TestFftRegistryBypass:
    def test_direct_np_fft_call(self):
        findings = _lint("""
            import numpy as np
            spec = np.fft.fft(x)
        """)
        assert _rules(findings) == ["fft-registry-bypass"]
        assert findings[0].line == 3
        assert "get_backend" in findings[0].message

    @pytest.mark.parametrize("call", [
        "numpy.fft.ifft(x)", "scipy.fft.rfft(x)", "np.fft.fft2(x)",
        "pyfftw.interfaces.numpy_fft.fft(x)",
    ])
    def test_other_vendor_transforms(self, call):
        findings = _lint(f"y = {call}\n")
        assert _rules(findings) == ["fft-registry-bypass"]

    def test_from_import_of_transform(self):
        findings = _lint("from numpy.fft import fft\n")
        assert _rules(findings) == ["fft-registry-bypass"]

    def test_registry_call_is_clean(self):
        assert _lint("""
            from repro.core.fft_backend import get_backend
            spec = get_backend().fft(x)
        """) == []

    def test_non_transform_fft_attrs_are_clean(self):
        # fftfreq/fftshift are helpers, not transforms.
        assert _lint("""
            import numpy as np
            f = np.fft.fftfreq(n)
            g = np.fft.fftshift(f)
        """) == []

    def test_fft_backend_module_is_exempt(self):
        findings = _lint("import numpy as np\ny = np.fft.fft(x)\n",
                         relpath="core/fft_backend.py")
        assert findings == []


class TestMetricNameFamily:
    def test_off_family_literal_is_flagged(self):
        findings = _lint('m = registry.counter("mylib.things")\n')
        assert _rules(findings) == ["metric-name-family"]

    @pytest.mark.parametrize("name", [
        "sfft.perm_filter.seconds", "cusim.kernel.launches", "sfft.loops",
    ])
    def test_family_names_are_clean(self, name):
        assert _lint(f'm = registry.gauge("{name}")\n') == []

    @pytest.mark.parametrize("name", ["sfft.Bad", "sfft", "cusim..x"])
    def test_malformed_family_names_are_flagged(self, name):
        findings = _lint(f'm = registry.histogram("{name}")\n')
        assert _rules(findings) == ["metric-name-family"]

    def test_dynamic_names_are_not_guessed(self):
        # Only literals are checkable; a variable name passes.
        assert _lint("m = registry.counter(name)\n") == []


class TestWorkspaceMutation:
    @pytest.mark.parametrize("stmt", [
        "ws.gather[0] = 1", "self._taps_flat[:] = 0",
        "ws.taps_matrix = other", "ws.gather += 1",
    ])
    def test_writes_are_flagged(self, stmt):
        findings = _lint(f"{stmt}\n")
        assert _rules(findings) == ["workspace-mutation"]

    def test_inplace_method_is_flagged(self):
        findings = _lint("ws.gather.fill(0)\n")
        assert _rules(findings) == ["workspace-mutation"]

    def test_reads_are_clean(self):
        assert _lint("x = ws.gather[0] + ws.taps_flat.sum()\n") == []

    def test_workspace_module_is_exempt(self):
        assert _lint("self._gather = build()\n",
                     relpath="core/workspace.py") == []


class TestWallclockInCore:
    def test_time_call_in_core_is_flagged(self):
        findings = _lint("""
            import time
            t0 = time.perf_counter()
        """)
        assert _rules(findings) == ["wallclock-in-core"]
        assert "repro.obs.monotonic" in findings[0].message

    def test_aliased_import_is_tracked(self):
        findings = _lint("""
            import time as clock
            t0 = clock.monotonic()
        """, relpath="gpu/example.py")
        assert _rules(findings) == ["wallclock-in-core"]

    def test_from_import_is_tracked(self):
        findings = _lint("""
            from time import perf_counter
            t0 = perf_counter()
        """)
        assert _rules(findings) == ["wallclock-in-core"]

    def test_outside_core_and_gpu_is_clean(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert _lint(src, relpath="obs/trace.py") == []
        assert _lint(src, relpath="experiments/example.py") == []

    def test_sleep_is_not_a_clock(self):
        assert _lint("import time\ntime.sleep(1)\n") == []


class TestTelemetryThreadSafety:
    @pytest.mark.parametrize("stmt", [
        "x = registry._instruments['sfft.loops']",
        "tracer._subscribers.append(fn)",
        "events = list(recorder._ring)",
        "recorder._ring.clear()",
    ])
    def test_internal_access_is_flagged(self, stmt):
        findings = _lint(f"{stmt}\n")
        assert _rules(findings) == ["telemetry-thread-safety"]
        assert "subscription API" in findings[0].message

    def test_public_api_is_clean(self):
        assert _lint("""
            unsub = registry.subscribe(recorder.record_metric)
            registry.counter("sfft.loops").inc()
            recorder.events(5.0)
        """) == []

    def test_obs_modules_are_exempt(self):
        assert _lint("self._ring.append(event)\n",
                     relpath="obs/live.py") == []
        assert _lint("subs = list(self._subscribers)\n",
                     relpath="obs/metrics.py") == []

    def test_suppressible(self):
        src = ("n = len(recorder._ring)  "
               "# reprolint: ignore[telemetry-thread-safety]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []


class TestSpanOrphan:
    def test_trackless_add_span_is_flagged(self):
        findings = _lint(
            'tracer.add_span("comb", start_s=0.0, duration_s=w, '
            'category="sfft")\n'
        )
        assert _rules(findings) == ["span-orphan"]
        assert "track" in findings[0].message

    def test_tracked_add_span_is_clean(self):
        assert _lint(
            'tracer.add_span("comb", start_s=0.0, duration_s=w, '
            'category="sfft", track=EXECUTOR_TRACK)\n'
        ) == []

    def test_kwargs_splat_is_not_guessed_at(self):
        assert _lint('tracer.add_span("comb", **span_kwargs)\n') == []

    def test_obs_modules_are_exempt(self):
        assert _lint('replay.add_span("x", start_s=0.0, duration_s=1.0)\n',
                     relpath="obs/live.py") == []

    def test_suppressible(self):
        src = ('tracer.add_span("x", start_s=0.0, duration_s=1.0)  '
               "# reprolint: ignore[span-orphan]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []


class TestParamResolutionBypass:
    def test_constant_loops_in_make_plan_is_flagged(self):
        findings = _lint("plan = make_plan(n, k, loops=6)\n")
        assert _rules(findings) == ["param-resolution-bypass"]
        assert "loops=6" in findings[0].message

    def test_constant_b_in_derive_parameters_is_flagged(self):
        findings = _lint("p = derive_parameters(n, k, B=256)\n")
        assert _rules(findings) == ["param-resolution-bypass"]

    def test_constant_in_dict_kwargs_bundle_is_flagged(self):
        findings = _lint('KW = dict(profile="fast", loops=6)\n',
                         relpath="experiments/base.py")
        assert _rules(findings) == ["param-resolution-bypass"]

    def test_threaded_value_is_clean(self):
        assert _lint("plan = make_plan(n, k, **resolved.overrides)\n") == []
        assert _lint("plan = make_plan(n, k, loops=cfg.loops)\n") == []

    def test_explicit_none_is_clean(self):
        # loops=None means "derive the default" — not a pinned value.
        assert _lint("p = derive_parameters(n, k, loops=None)\n") == []

    def test_unrelated_callable_is_clean(self):
        assert _lint("obj = Candidate(loops=6)\n") == []

    def test_seam_and_tuner_are_exempt(self):
        src = "p = derive_parameters(n, k, loops=6)\n"
        assert _lint(src, relpath="core/params.py") == []
        assert _lint(src, relpath="core/parameters.py") == []
        assert _lint(src, relpath="tune/candidates.py") == []

    def test_suppressible(self):
        src = ("KW = dict(loops=6)  "
               "# reprolint: ignore[param-resolution-bypass]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []


class TestShmLifecycle:
    def test_ctor_outside_owner_is_flagged(self):
        findings = _lint("""
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(name="x")
        """)
        assert _rules(findings) == ["shm-lifecycle"]
        assert "core/shm.py" in findings[0].message

    def test_bare_name_ctor_is_flagged(self):
        findings = _lint("""
            from multiprocessing.shared_memory import SharedMemory
            seg = SharedMemory(name="x")
        """, relpath="obs/export.py")
        assert _rules(findings) == ["shm-lifecycle"]

    def test_create_without_unlink_in_owner_is_flagged(self):
        findings = _lint("""
            from multiprocessing import shared_memory
            def build():
                return shared_memory.SharedMemory(create=True, size=8)
        """, relpath="core/shm.py")
        assert _rules(findings) == ["shm-lifecycle"]
        assert "unlink" in findings[0].message

    def test_create_with_unlink_path_in_owner_is_clean(self):
        assert _lint("""
            from multiprocessing import shared_memory
            def build():
                seg = shared_memory.SharedMemory(create=True, size=8)
                try:
                    fill(seg)
                except Exception:
                    seg.close()
                    seg.unlink()
                    raise
                return seg
        """, relpath="core/shm.py") == []

    def test_create_outside_owner_is_doubly_wrong(self):
        # A creating function elsewhere trips both halves of the rule:
        # wrong module *and* no unlink path.
        findings = _lint("""
            from multiprocessing import shared_memory
            def build():
                return shared_memory.SharedMemory(create=True, size=8)
        """)
        assert _rules(findings) == ["shm-lifecycle", "shm-lifecycle"]

    def test_nested_function_scopes_are_independent(self):
        # The unlink lives in a nested closure the creating scope never
        # reaches; the create is still flagged.
        findings = _lint("""
            from multiprocessing import shared_memory
            def build():
                seg = shared_memory.SharedMemory(create=True, size=8)
                def cleanup():
                    seg.unlink()
                return seg
        """, relpath="core/shm.py")
        assert _rules(findings) == ["shm-lifecycle"]

    def test_attach_in_owner_is_clean(self):
        assert _lint("""
            from multiprocessing import shared_memory
            def attach(name):
                return shared_memory.SharedMemory(name=name)
        """, relpath="core/shm.py") == []

    def test_suppressible(self):
        src = ("from multiprocessing.shared_memory import SharedMemory\n"
               "seg = SharedMemory(name='x')  "
               "# reprolint: ignore[shm-lifecycle]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []


class TestBareValueError:
    def test_raise_valueerror_is_flagged(self):
        findings = _lint('raise ValueError("bad")\n')
        assert _rules(findings) == ["bare-valueerror"]

    def test_reraise_name_is_flagged(self):
        assert _rules(_lint("raise ValueError\n")) == ["bare-valueerror"]

    def test_parameter_error_is_clean(self):
        assert _lint("""
            from repro.errors import ParameterError
            raise ParameterError("bad")
        """) == []

    def test_catching_valueerror_is_clean(self):
        assert _lint("""
            try:
                f()
            except ValueError:
                pass
        """) == []


class TestEnvReadOutsideSeam:
    def test_os_environ_read_is_flagged(self):
        findings = _lint("""
            import os
            mode = os.environ["REPRO_MODE"]
        """)
        assert _rules(findings) == ["env-read-outside-seam"]
        assert "config seam" in findings[0].message

    def test_os_environ_get_emits_once(self):
        findings = _lint("""
            import os
            mode = os.environ.get("REPRO_MODE", "")
        """)
        assert _rules(findings) == ["env-read-outside-seam"]

    def test_os_getenv_is_flagged(self):
        findings = _lint("""
            import os
            mode = os.getenv("REPRO_MODE")
        """)
        assert _rules(findings) == ["env-read-outside-seam"]

    def test_from_os_import_is_flagged(self):
        findings = _lint("from os import environ\n")
        assert _rules(findings) == ["env-read-outside-seam"]
        findings = _lint("from os import getenv\n")
        assert _rules(findings) == ["env-read-outside-seam"]

    @pytest.mark.parametrize("seam", [
        "core/params.py", "core/fft_backend.py", "core/executor.py",
        "__main__.py",
    ])
    def test_sanctioned_seams_are_exempt(self, seam):
        findings = _lint("""
            import os
            mode = os.environ.get("REPRO_MODE", "")
            other = os.getenv("REPRO_OTHER")
        """, relpath=seam)
        assert findings == []

    def test_non_env_os_attrs_are_clean(self):
        assert _lint("""
            import os
            path = os.path.join(os.sep, "tmp")
            pid = os.getpid()
        """) == []

    def test_suppression_works(self):
        src = ("import os\n"
               "flag = os.environ.get('X', '')  "
               "# reprolint: ignore[env-read-outside-seam]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []


class TestSuppressions:
    def test_targeted_suppression(self):
        src = ("import numpy as np\n"
               "y = np.fft.fft(x)  # reprolint: ignore[fft-registry-bypass]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []

    def test_bare_suppression_covers_all_rules(self):
        src = 'raise ValueError("x")  # reprolint: ignore\n'
        assert lint_source(src, path="a.py", relpath="core/a.py") == []

    def test_wrong_rule_does_not_suppress(self):
        src = ('raise ValueError("x")  '
               "# reprolint: ignore[fft-registry-bypass]\n")
        findings = lint_source(src, path="a.py", relpath="core/a.py")
        assert _rules(findings) == ["bare-valueerror"]

    def test_multiline_statement_suppressed_on_any_line(self):
        src = ("import numpy as np\n"
               "y = np.fft.fft(\n"
               "    x,\n"
               ")  # reprolint: ignore[fft-registry-bypass]\n")
        assert lint_source(src, path="a.py", relpath="core/a.py") == []

    def test_parsing(self):
        sup = Suppressions(
            "x = 1  # reprolint: ignore[rule-a, rule-b]\n"
            "y = 2  # reprolint: ignore\n"
        )
        assert len(sup) == 2
        assert sup.covers("rule-a", 1) and sup.covers("rule-b", 1)
        assert not sup.covers("rule-c", 1)
        assert sup.covers("anything", 2)
        assert sup.covers("rule-a", 1, end_line=3)


class TestFindingSchema:
    def test_round_trip_validates(self):
        finding = Finding(rule="kernel-race", severity="error",
                          path="src/repro/x.py", line=3, message="boom",
                          engine="race")
        assert validate_lint_record(finding.to_json()) == []
        assert finding.render() == (
            "src/repro/x.py:3: error: boom [kernel-race]"
        )
        assert finding.fingerprint() == "kernel-race::src/repro/x.py::boom"

    def test_invalid_records_name_the_field(self):
        problems = validate_lint_record({"schema": "repro.lint/1"})
        text = "\n".join(problems)
        for field in ("rule", "severity", "path", "line", "message"):
            assert field in text
        assert validate_lint_record([]) == ["lint record must be a JSON object"]

    def test_malformed_finding_is_rejected_at_construction(self):
        with pytest.raises(ParameterError):
            Finding(rule="Bad Rule", severity="error", path="x", line=1,
                    message="m")
        with pytest.raises(ParameterError):
            Finding(rule="ok-rule", severity="fatal", path="x", line=1,
                    message="m")

    def test_rule_catalog_carries_rationales(self):
        assert set(RULES) == {
            "fft-registry-bypass", "metric-name-family",
            "workspace-mutation", "wallclock-in-core", "bare-valueerror",
            "telemetry-thread-safety", "span-orphan", "shm-lifecycle",
            "param-resolution-bypass", "env-read-outside-seam",
        }
        for rule in RULES.values():
            assert rule.summary and rule.rationale


class TestRepoTipIsClean:
    def test_lint_tree_reports_nothing(self):
        assert lint_tree() == []


class TestLintCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_seeded_bad_file_exits_nonzero_with_anchor(self, tmp_path,
                                                       capsys):
        target = tmp_path / "bad.py"
        target.write_text("import numpy as np\ny = np.fft.fft(x)\n")
        assert lint_main([str(target)]) == 1
        out = capsys.readouterr().out
        assert f"{target}:2: error:" in out.replace("\\", "/")
        assert "[fft-registry-bypass]" in out

    def test_json_records_validate(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text('raise ValueError("x")\n')
        assert lint_main(["--json", str(target)]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            assert validate_lint_record(json.loads(line)) == []

    def test_missing_file_is_usage_error(self, capsys):
        assert lint_main(["/no/such/file.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_full_repo_run_is_green(self, capsys):
        assert lint_main(["--no-kernels"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out
