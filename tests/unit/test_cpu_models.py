"""Unit tests for the CPU comparators: machine spec, FFTW, PsFFT."""

import numpy as np
import pytest

from repro.cpu import SANDY_BRIDGE_E5_2640, FftwPlan, PsFFT
from repro.errors import ParameterError
from repro.perf import sfft_step_counts
from repro.signals import make_sparse_signal

CPU = SANDY_BRIDGE_E5_2640


class TestCpuSpec:
    def test_table2_numbers(self):
        # Paper Table II: 6 cores, 2.50 GHz, 6x32KB L1D, 6x256KB L2,
        # 15 MB L3, 64 GB DRAM.
        assert CPU.cores == 6
        assert CPU.clock_hz == pytest.approx(2.5e9)
        assert CPU.l1d_bytes == 32 * 1024
        assert CPU.l2_bytes == 256 * 1024
        assert CPU.l3_bytes == 15 * 1024**2
        assert CPU.dram_bytes == 64 * 1024**3

    def test_derived_rates_positive(self):
        assert 0 < CPU.effective_bandwidth < CPU.peak_bandwidth
        assert 0 < CPU.effective_flops < CPU.dp_flops
        assert CPU.random_access_rate > 1e8


class TestFftw:
    def test_functional_matches_numpy(self, rng):
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        assert np.allclose(FftwPlan(512).execute(x), np.fft.fft(x))

    def test_time_grows_superlinearly(self):
        ts = [FftwPlan(1 << p).estimated_time() for p in (20, 23, 26)]
        assert ts[0] < ts[1] < ts[2]
        assert ts[2] / ts[1] > (1 << 26) / (1 << 23) * 0.9

    def test_cache_resident_is_flop_bound(self):
        small = FftwPlan(1 << 16)
        assert small.dram_passes == 0

    def test_out_of_cache_pays_dram(self):
        assert FftwPlan(1 << 24).dram_passes >= 1

    def test_fewer_threads_slower(self):
        assert FftwPlan(1 << 24, threads=1).estimated_time() > FftwPlan(
            1 << 24, threads=6
        ).estimated_time()

    def test_k_plays_no_role(self):
        # The dense transform has no sparsity parameter at all.
        assert FftwPlan(1 << 20).estimated_time() == FftwPlan(1 << 20).estimated_time()

    def test_validation(self):
        with pytest.raises(ParameterError):
            FftwPlan(1000)
        with pytest.raises(ParameterError):
            FftwPlan(1024, threads=0)
        with pytest.raises(ParameterError):
            FftwPlan(1024).execute(np.zeros(512, complex))


class TestPsfft:
    def test_functional_recovers_sparse_signal(self):
        sig = make_sparse_signal(1 << 13, 8, seed=3)
        ps = PsFFT.create(1 << 13, 8)
        res = ps.execute(sig.time, seed=4)
        assert set(res.locations.tolist()) == set(sig.locations.tolist())

    def test_step_times_all_positive(self):
        times = PsFFT.create(1 << 20, 100).estimated_times()
        for name, value in times.as_dict().items():
            assert value > 0, name
        assert times.total == pytest.approx(sum(times.as_dict().values()))

    def test_sublinear_growth_in_n(self):
        # 8x the data should cost far less than 8x the time (sFFT scaling).
        t1 = PsFFT.create(1 << 21, 1000, profile="fast").estimated_time()
        t2 = PsFFT.create(1 << 24, 1000, profile="fast").estimated_time()
        assert t2 / t1 < 6.0

    def test_grows_with_k(self):
        t_small = PsFFT.create(1 << 22, 100, profile="fast").estimated_time()
        t_big = PsFFT.create(1 << 22, 2000, profile="fast").estimated_time()
        assert t_big > t_small

    def test_counts_shared_with_gpu_model(self):
        ps = PsFFT.create(1 << 18, 50)
        assert ps.step_counts() == sfft_step_counts(ps.params)

    def test_fewer_threads_slower(self):
        slow = PsFFT.create(1 << 22, 500, threads=1).estimated_time()
        fast = PsFFT.create(1 << 22, 500, threads=6).estimated_time()
        assert slow > 2 * fast

    def test_plan_cached(self):
        ps = PsFFT.create(1 << 12, 4)
        assert ps.plan(seed=1) is ps.plan(seed=2)


class TestStepCounts:
    def test_filter_width_multiple_of_B(self):
        from repro.core import derive_parameters

        c = sfft_step_counts(derive_parameters(1 << 20, 100))
        assert c.filter_width % c.B == 0
        assert c.rounds == c.filter_width // c.B

    def test_counts_match_real_plan_width(self):
        from repro.core import derive_parameters, make_plan

        params = derive_parameters(1 << 14, 16)
        c = sfft_step_counts(params)
        plan = make_plan(params.n, params.k, params=params, seed=0)
        assert c.filter_width == plan.filt.width

    def test_votes_formula(self):
        from repro.core import derive_parameters

        p = derive_parameters(1 << 16, 32, B=1024, loops=5, select_count=40)
        c = sfft_step_counts(p)
        assert c.votes == 5 * 40 * ((1 << 16) // 1024)

    def test_gaussian_window_counts(self):
        from repro.core import derive_parameters

        p = derive_parameters(1 << 16, 32, window="gaussian")
        c = sfft_step_counts(p)
        assert c.filter_width > 0
