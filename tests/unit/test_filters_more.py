"""Additional filter-stack tests: design trade-offs, profiles, metrics."""

import numpy as np
import pytest

from repro.core import PROFILES, derive_parameters
from repro.errors import FilterDesignError, ReproError
from repro.filters import (
    FlatFilter,
    analyze_filter,
    chebyshev_support,
    gaussian_support,
    make_flat_window,
)


class TestSupportFormulas:
    def test_support_inversely_proportional_to_lobefrac(self):
        w1 = chebyshev_support(0.01, 1e-6)
        w2 = chebyshev_support(0.005, 1e-6)
        assert w2 == pytest.approx(2 * w1, rel=0.05)

    def test_support_grows_log_with_tolerance(self):
        w6 = chebyshev_support(0.01, 1e-6)
        w12 = chebyshev_support(0.01, 1e-12)
        assert 1.5 < w12 / w6 < 2.5  # acosh(1/d) ~ ln(2/d)

    def test_gaussian_needs_more_taps(self):
        assert gaussian_support(0.01, 1e-8) > chebyshev_support(0.01, 1e-8)

    def test_profiles_trade_support_for_accuracy(self):
        fast = derive_parameters(1 << 16, 32, profile="fast")
        accurate = derive_parameters(1 << 16, 32, profile="accurate")
        assert fast.tolerance > accurate.tolerance
        assert fast.lobefrac > accurate.lobefrac
        w_fast = chebyshev_support(fast.lobefrac, fast.tolerance)
        w_acc = chebyshev_support(accurate.lobefrac, accurate.tolerance)
        assert w_fast < 0.6 * w_acc

    def test_profiles_registry(self):
        assert set(PROFILES) == {"accurate", "fast"}


class TestFilterTradeoffs:
    def test_tighter_tolerance_cleaner_stopband(self):
        n, B = 1 << 12, 64
        loose = make_flat_window(n, B, tolerance=1e-4)
        tight = make_flat_window(n, B, tolerance=1e-10)
        assert (
            tight.stopband_leakage(beyond=n // B)
            < loose.stopband_leakage(beyond=n // B) / 100
        )

    def test_wider_box_wider_passband(self):
        n, B = 1 << 12, 64
        narrow = make_flat_window(n, B, box_halfwidth=n // B // 4)
        wide = make_flat_window(n, B, box_halfwidth=n // B)
        assert wide.passband_halfwidth() > narrow.passband_halfwidth()

    def test_fast_profile_filter_still_usable(self):
        n, B = 1 << 14, 128
        f = make_flat_window(
            n, B, tolerance=1e-6, lobefrac=0.5 / B
        )
        rep = analyze_filter(f, B)
        # Fast profile: the wider main lobe leaks a couple of percent into
        # the immediately adjacent bucket (voting absorbs that), but the
        # in-bucket response stays near 1 and the response two bucket
        # spacings out is at tolerance level.
        assert rep.passband_min > 0.9
        assert rep.stopband_max < 0.05
        assert f.stopband_leakage(beyond=2 * (n // B)) < 1e-3

    def test_filter_energy_concentrated_in_support(self):
        n, B = 1 << 12, 64
        f = make_flat_window(n, B)
        time_energy = float(np.abs(f.time) ** 2 @ np.ones(f.width))
        assert time_energy > 0

    def test_report_fields_consistent(self):
        n, B = 1 << 12, 64
        rep = analyze_filter(make_flat_window(n, B), B)
        assert 0 <= rep.passband_ripple < 1
        assert rep.passband_min <= rep.passband_max
        assert rep.support <= n
        assert rep.transition_width >= 0


class TestErrorHierarchy:
    def test_filter_errors_are_repro_errors(self):
        assert issubclass(FilterDesignError, ReproError)
        assert issubclass(FilterDesignError, ValueError)

    def test_all_library_errors_share_base(self):
        from repro.errors import (
            DeviceError,
            DeviceMemoryError,
            ExperimentError,
            LaunchConfigError,
            ParameterError,
            RecoveryError,
            StreamError,
        )

        for exc in (
            DeviceError, DeviceMemoryError, ExperimentError,
            LaunchConfigError, ParameterError, RecoveryError, StreamError,
        ):
            assert issubclass(exc, ReproError)

    def test_device_error_subtypes(self):
        from repro.errors import DeviceError, DeviceMemoryError, LaunchConfigError, StreamError

        assert issubclass(LaunchConfigError, DeviceError)
        assert issubclass(DeviceMemoryError, DeviceError)
        assert issubclass(StreamError, DeviceError)

    def test_one_except_catches_everything(self):
        from repro.filters import make_flat_window

        with pytest.raises(ReproError):
            make_flat_window(100, 7)
