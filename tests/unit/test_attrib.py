"""Unit tests: differential profiles and regression attribution.

Covers the pure diff helpers, the ``repro.attrib/1`` record assembly
(ranking, residual accounting, what-if blocks), the three entry points
(verdict / healthy run / two-run diff), and the schema validator that
keeps the JSONL surface honest.
"""

import pytest

from repro.errors import ParameterError
from repro.obs import (
    ATTRIB_SCHEMA,
    GateConfig,
    MetricsRegistry,
    Tracer,
    attribute_run,
    attribute_verdict,
    compare_to_baseline,
    diff_attrib_record,
    diff_collapsed_stacks,
    diff_self_times,
    make_attrib_record,
    make_baseline,
    make_run_record,
    render_attrib_record,
    validate_attrib_record,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


def make_record(name="demo", *, perm_filter_s=0.010, bucket_fft_s=0.002):
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("perm_filter", category="sfft"):
        clock.tick(perm_filter_s)
    with tr.span("bucket_fft", category="sfft"):
        clock.tick(bucket_fft_s)
    reg = MetricsRegistry()
    reg.gauge("sfft.recovery.hits").set(4)
    return make_run_record(
        name, params={"n": 4096, "k": 4}, tracer=tr, registry=reg,
        results={"l1_error_per_coeff": 1e-9},
    )


class TestDiffSelfTimes:
    def test_aligned_names_get_signed_deltas(self):
        a = make_record()["spans"]
        b = make_record(perm_filter_s=0.030)["spans"]
        rows = diff_self_times(a, b)
        top = rows[0]
        assert top["name"] == "perm_filter"
        assert top["delta_s"] == pytest.approx(0.020, abs=1e-6)
        flat = {r["name"]: r for r in rows}
        assert flat["bucket_fft"]["delta_s"] == pytest.approx(0.0, abs=1e-6)

    def test_one_sided_names_keep_explicit_zero(self):
        rows = diff_self_times(
            [{"name": "only_a", "track": "cpu", "start_s": 0.0,
              "duration_s": 1.0}],
            [],
        )
        assert rows == [
            {"name": "only_a", "base_s": 1.0, "fresh_s": 0.0, "delta_s": -1.0}
        ]


class TestDiffCollapsedStacks:
    def test_two_value_lines_over_the_union(self):
        a = make_record()["spans"]
        b = make_record(perm_filter_s=0.030)["spans"]
        lines = diff_collapsed_stacks(a, b)
        assert lines
        for line in lines:
            stack, base, fresh = line.rsplit(" ", 2)
            assert stack
            assert int(base) >= 0 and int(fresh) >= 0

    def test_absent_side_is_zero(self):
        lines = diff_collapsed_stacks(
            [], [{"name": "x", "track": "cpu", "start_s": 0.0,
                  "duration_s": 0.001}],
        )
        assert len(lines) == 1
        assert lines[0].split()[-2:] == ["0", "1000"]


class TestMakeAttribRecord:
    def _candidates(self):
        return [
            {"metric": "span.perm_filter.total_s", "base": 0.01, "fresh": 0.05},
            {"metric": "span.bucket_fft.total_s", "base": 0.002, "fresh": 0.003},
        ]

    def test_ranked_by_absolute_delta(self):
        doc = make_attrib_record(
            key="k", status="regression",
            target={"metric": "results.sfft_wall_s", "class": "wall",
                    "base": 0.02, "fresh": 0.07},
            candidates=self._candidates(),
        )
        metrics = [c["metric"] for c in doc["contributors"]]
        assert metrics[0] == "span.perm_filter.total_s"
        assert doc["contributors"][0]["delta"] == pytest.approx(0.04)
        assert validate_attrib_record(doc) == []

    def test_residual_accounts_for_the_unexplained_part(self):
        doc = make_attrib_record(
            key="k", status="regression",
            target={"metric": "m", "base": 0.0, "fresh": 0.10},
            candidates=self._candidates(),
        )
        explained = sum(c["delta"] for c in doc["contributors"])
        assert doc["residual"]["delta"] == pytest.approx(0.10 - explained)
        assert doc["residual"]["dropped_candidates"] == 0

    def test_top_n_truncates_and_counts_dropped(self):
        doc = make_attrib_record(
            key="k", status="regression",
            target={"metric": "m", "base": 0.0, "fresh": 0.10},
            candidates=self._candidates(), top_n=1,
        )
        assert len(doc["contributors"]) == 1
        assert doc["residual"]["dropped_candidates"] == 1

    def test_spans_attach_path_shares_and_what_if(self):
        spans = make_record(perm_filter_s=0.05)["spans"]
        doc = make_attrib_record(
            key="k", status="regression",
            target={"metric": "m", "base": 0.0, "fresh": 0.05},
            candidates=self._candidates(), spans=spans,
        )
        top = doc["contributors"][0]
        assert top["path_share"] is not None and top["path_share"] > 0.5
        # Regressed 5x from baseline -> the what-if factor is fresh/base.
        assert top["what_if"]["speedup_factor_x"] == pytest.approx(5.0)
        assert top["what_if"]["projected_run_speedup_x"] > 1.0
        shares = doc["critical_path"]["shares"]
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        assert validate_attrib_record(doc) == []

    def test_bad_status_and_top_n_raise(self):
        with pytest.raises(ParameterError, match="status"):
            make_attrib_record(key="k", status="meh", target=None,
                               candidates=[])
        with pytest.raises(ParameterError, match="top_n"):
            make_attrib_record(key="k", status="ok", target=None,
                               candidates=[], top_n=0)


class TestAttributeVerdict:
    def test_regressed_span_metric_is_its_own_top_contributor(self):
        base_records = [make_record() for _ in range(3)]
        baseline = make_baseline(base_records)
        fresh = [make_record(perm_filter_s=0.100)]
        verdict = compare_to_baseline(baseline, fresh, GateConfig())
        assert verdict.status == "regression"
        docs = attribute_verdict(baseline, fresh, verdict)
        assert len(docs) == len(verdict.regressions())
        doc = docs[0]
        assert doc["status"] == "regression"
        assert doc["contributors"][0]["metric"] == "span.perm_filter.total_s"
        assert validate_attrib_record(doc) == []

    def test_clean_verdict_yields_no_records(self):
        records = [make_record() for _ in range(3)]
        baseline = make_baseline(records)
        verdict = compare_to_baseline(baseline, records, GateConfig())
        assert attribute_verdict(baseline, records, verdict) == []


class TestAttributeRun:
    def test_without_baseline_still_carries_critical_path(self):
        doc = attribute_run(None, [make_record()])
        assert doc["status"] == "ok"
        assert doc["target"] is None
        assert doc["critical_path"] is not None
        assert validate_attrib_record(doc) == []

    def test_with_baseline_targets_the_headline_metric(self):
        records = [make_record() for _ in range(2)]
        baseline = make_baseline(records)
        doc = attribute_run(baseline, records)
        assert doc["status"] == "ok"
        assert doc["contributors"]
        assert validate_attrib_record(doc) == []

    def test_no_records_raises(self):
        with pytest.raises(ParameterError, match="at least one"):
            attribute_run(None, [])

    def test_unknown_key_raises(self):
        with pytest.raises(ParameterError, match="no records under"):
            attribute_run(None, [make_record()], key="nope|n=1|k=1|default")


class TestDiffAttribRecord:
    def test_two_runs_head_to_head(self):
        a = make_record()
        b = make_record(perm_filter_s=0.030)
        doc = diff_attrib_record(a, b)
        assert doc["status"] == "diff"
        assert doc["target"]["metric"] == "span.total_self_s"
        assert doc["contributors"][0]["metric"] == "span.perm_filter.self_s"
        # Self-time contributors still join to critical-path shares.
        assert doc["contributors"][0]["path_share"] is not None
        assert validate_attrib_record(doc) == []


class TestValidateAttribRecord:
    def _valid(self):
        return make_attrib_record(
            key="k", status="ok", target=None, candidates=[],
            spans=make_record()["spans"],
        )

    def test_valid_record_passes(self):
        assert validate_attrib_record(self._valid()) == []

    def test_non_object_rejected(self):
        assert validate_attrib_record([1, 2]) != []

    @pytest.mark.parametrize("mutate,needle", [
        (lambda d: d.update(schema="nope/9"), "schema"),
        (lambda d: d.update(key=""), "key"),
        (lambda d: d.update(status="maybe"), "status"),
        (lambda d: d.update(contributors={}), "contributors"),
    ])
    def test_field_problems_are_named(self, mutate, needle):
        doc = self._valid()
        mutate(doc)
        assert any(needle in p for p in validate_attrib_record(doc))

    def test_share_sum_must_be_one(self):
        doc = self._valid()
        doc["critical_path"]["shares"] = {"a": 0.5, "b": 0.3}
        assert any("sum to 1.0" in p for p in validate_attrib_record(doc))

    def test_path_share_bounds(self):
        doc = make_attrib_record(
            key="k", status="regression",
            target={"metric": "m", "base": 1.0, "fresh": 2.0},
            candidates=[{"metric": "span.x.total_s", "base": 1.0,
                         "fresh": 2.0}],
        )
        doc["contributors"][0]["path_share"] = 1.5
        assert any("path_share" in p for p in validate_attrib_record(doc))


class TestRenderAttribRecord:
    def test_head_table_and_residual(self):
        base_records = [make_record() for _ in range(3)]
        baseline = make_baseline(base_records)
        fresh = [make_record(perm_filter_s=0.100)]
        verdict = compare_to_baseline(baseline, fresh, GateConfig())
        doc = attribute_verdict(baseline, fresh, verdict)[0]
        out = render_attrib_record(doc)
        assert out.startswith("why: ")
        assert "[regression]" in out
        assert "top contributors" in out
        assert "unattributed residual" in out
        assert "critical path: makespan" in out

    def test_schema_constant_matches(self):
        assert ATTRIB_SCHEMA == "repro.attrib/1"
