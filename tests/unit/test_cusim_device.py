"""Unit tests for the simulated device: spec, occupancy, memory model,
atomics, kernel cost model."""

import numpy as np
import pytest

from repro.cusim import (
    KEPLER_K20X,
    AccessPattern,
    AtomicProfile,
    GlobalAccess,
    KernelSpec,
    atomic_time,
    estimate_kernel,
    measure_transactions,
    transaction_count,
    wire_bytes,
)
from repro.errors import LaunchConfigError, ParameterError

DEV = KEPLER_K20X


class TestDeviceSpec:
    def test_table1_numbers(self):
        # Paper Table I: 2688 cores / 14 SMs, 732 MHz, 6 GB, 250 GB/s.
        assert DEV.total_cores == 2688
        assert DEV.sm_count == 14
        assert DEV.clock_hz == pytest.approx(732e6)
        assert DEV.global_mem_bytes == 6 * 1024**3
        assert DEV.peak_bandwidth == pytest.approx(250e9)

    def test_effective_bandwidth_below_peak(self):
        assert DEV.effective_bandwidth < DEV.peak_bandwidth


class TestOccupancy:
    def test_full_occupancy_at_256_threads(self):
        occ = DEV.occupancy(256)
        assert occ.fraction == 1.0
        assert occ.blocks_per_sm == 8

    def test_small_blocks_hit_block_limit(self):
        occ = DEV.occupancy(32)
        # 16 blocks x 32 threads = 512 threads of 2048 possible.
        assert occ.limiter == "blocks"
        assert occ.fraction == pytest.approx(0.25)

    def test_register_pressure_reduces_occupancy(self):
        lo = DEV.occupancy(256, registers_per_thread=128)
        hi = DEV.occupancy(256, registers_per_thread=32)
        assert lo.fraction < hi.fraction
        assert lo.limiter == "registers"

    def test_shared_memory_limits_blocks(self):
        occ = DEV.occupancy(256, shared_per_block=24 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared"

    def test_oversized_block_rejected(self):
        with pytest.raises(LaunchConfigError):
            DEV.occupancy(2048)

    def test_impossible_shared_rejected(self):
        with pytest.raises(LaunchConfigError):
            DEV.occupancy(256, shared_per_block=64 * 1024)

    def test_bad_registers_rejected(self):
        with pytest.raises(LaunchConfigError):
            DEV.occupancy(256, registers_per_thread=0)


class TestTransactionModel:
    def test_coalesced_complex128(self):
        # 32 lanes x 16B = 512B = 4 segments per warp.
        a = GlobalAccess(AccessPattern.COALESCED, 32, 16)
        assert transaction_count(a, DEV) == 4

    def test_coalesced_rounds_up(self):
        a = GlobalAccess(AccessPattern.COALESCED, 5, 16)
        assert transaction_count(a, DEV) == 1

    def test_random_pays_one_per_element(self):
        a = GlobalAccess(AccessPattern.RANDOM, 1000, 16)
        assert transaction_count(a, DEV) == 1000

    def test_broadcast_one_per_warp(self):
        a = GlobalAccess(AccessPattern.BROADCAST, 64, 8)
        assert transaction_count(a, DEV) == 2

    def test_strided_interpolates(self):
        dense = GlobalAccess(AccessPattern.STRIDED, 32, 8, stride=1)
        mid = GlobalAccess(AccessPattern.STRIDED, 32, 8, stride=4)
        wide = GlobalAccess(AccessPattern.STRIDED, 32, 8, stride=64)
        t_dense = transaction_count(dense, DEV)
        t_mid = transaction_count(mid, DEV)
        t_wide = transaction_count(wide, DEV)
        assert t_dense == 2            # same as coalesced 32x8B
        assert t_dense < t_mid < t_wide
        assert t_wide == 32            # fully scattered

    def test_zero_elements(self):
        a = GlobalAccess(AccessPattern.RANDOM, 0, 16)
        assert transaction_count(a, DEV) == 0

    def test_wire_bytes_amplification(self):
        a = GlobalAccess(AccessPattern.RANDOM, 100, 16)
        assert wire_bytes(a, DEV) == 100 * 128  # 8x amplification

    def test_invalid_access(self):
        with pytest.raises(ParameterError):
            GlobalAccess(AccessPattern.RANDOM, -1, 16)
        with pytest.raises(ParameterError):
            GlobalAccess(AccessPattern.STRIDED, 10, 8, stride=0)

    def test_measured_matches_analytic_coalesced(self):
        addr = np.arange(256) * 16
        a = GlobalAccess(AccessPattern.COALESCED, 256, 16)
        assert measure_transactions(addr, DEV) == transaction_count(a, DEV)

    def test_measured_matches_analytic_random(self, rng):
        addr = rng.integers(0, 1 << 30, 320) * 997  # effectively random
        a = GlobalAccess(AccessPattern.RANDOM, 320, 16)
        got = measure_transactions(addr, DEV)
        # Random may collide occasionally; within a few percent.
        assert got <= transaction_count(a, DEV)
        assert got > 0.9 * transaction_count(a, DEV)

    def test_measured_broadcast(self):
        addr = np.zeros(64, dtype=np.int64)
        assert measure_transactions(addr, DEV) == 2

    def test_measured_rejects_floats(self):
        with pytest.raises(ParameterError):
            measure_transactions(np.zeros(4), DEV)


class TestAtomics:
    def test_no_atomics_free(self):
        assert atomic_time(None, DEV) == 0.0
        assert atomic_time(AtomicProfile(0, 1), DEV) == 0.0

    def test_conflict_free_throughput_bound(self):
        t = atomic_time(AtomicProfile(ops=10**7, distinct_addresses=10**7), DEV)
        assert t == pytest.approx(10**7 / DEV.atomic_throughput)

    def test_single_counter_serializes(self):
        free = atomic_time(AtomicProfile(10**4, 10**4), DEV)
        hot = atomic_time(AtomicProfile(10**4, 1), DEV)
        assert hot > 10 * free

    def test_invalid_profile(self):
        with pytest.raises(ParameterError):
            AtomicProfile(ops=5, distinct_addresses=0)


class TestKernelCostModel:
    def test_memory_bound_coalesced_read_rate(self):
        spec = KernelSpec(
            "r", grid_blocks=4096, threads_per_block=256,
            accesses=(GlobalAccess(AccessPattern.COALESCED, 1 << 27, 16),),
        )
        t = estimate_kernel(spec, DEV)
        expect = (1 << 27) * 16 / DEV.effective_bandwidth
        assert t.memory_s == pytest.approx(expect, rel=0.05)
        assert t.bound == "memory"

    def test_random_8x_slower_than_coalesced(self):
        mk = lambda pat: estimate_kernel(
            KernelSpec("k", 4096, 256, accesses=(GlobalAccess(pat, 1 << 24, 16),)),
            DEV,
        )
        ratio = mk(AccessPattern.RANDOM).memory_s / mk(AccessPattern.COALESCED).memory_s
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_small_grid_cannot_saturate_bandwidth(self):
        # Few resident warps -> Little's-law cap -> slower per byte.
        big = estimate_kernel(
            KernelSpec("b", 4096, 256,
                       accesses=(GlobalAccess(AccessPattern.RANDOM, 1 << 20, 16),)),
            DEV,
        )
        small = estimate_kernel(
            KernelSpec("s", 4, 256,
                       accesses=(GlobalAccess(AccessPattern.RANDOM, 1 << 20, 16),)),
            DEV,
        )
        assert small.memory_s > 2 * big.memory_s

    def test_compute_bound_kernel(self):
        spec = KernelSpec("c", 4096, 256, flops_per_thread=1e5)
        t = estimate_kernel(spec, DEV)
        assert t.bound == "compute"
        assert t.compute_s == pytest.approx(
            4096 * 256 * 1e5 / DEV.dp_flops, rel=0.01
        )

    def test_latency_chain_floor(self):
        spec = KernelSpec(
            "l", 1, 32, dependent_rounds=100,
            accesses=(GlobalAccess(AccessPattern.RANDOM, 3200, 16),),
        )
        t = estimate_kernel(spec, DEV)
        assert t.latency_s == pytest.approx(
            100 * DEV.mem_latency_s / DEV.mlp_per_warp
        )

    def test_atomics_add_to_total(self):
        base = KernelSpec("a", 64, 256, flops_per_thread=10)
        with_at = KernelSpec(
            "a", 64, 256, flops_per_thread=10,
            atomics=AtomicProfile(ops=10**6, distinct_addresses=8),
        )
        assert (
            estimate_kernel(with_at, DEV).total_s
            > estimate_kernel(base, DEV).total_s
        )

    def test_sm_demand_scales_with_grid(self):
        small = estimate_kernel(KernelSpec("s", 1, 64, flops_per_thread=1), DEV)
        big = estimate_kernel(KernelSpec("b", 4096, 256, flops_per_thread=1), DEV)
        assert small.sm_demand < big.sm_demand
        assert small.sm_demand >= 1.0 / DEV.sm_count
        assert big.sm_demand == 1.0

    def test_coalescing_efficiency_reported(self):
        spec = KernelSpec(
            "e", 64, 256,
            accesses=(GlobalAccess(AccessPattern.RANDOM, 1000, 16),),
        )
        t = estimate_kernel(spec, DEV)
        assert t.coalescing_efficiency == pytest.approx(16 / 128)

    def test_invalid_spec(self):
        with pytest.raises(LaunchConfigError):
            KernelSpec("x", 0, 256)
        with pytest.raises(LaunchConfigError):
            KernelSpec("x", 1, 256, dependent_rounds=0)

    def test_launch_overhead_floor(self):
        t = estimate_kernel(KernelSpec("tiny", 1, 32, flops_per_thread=1), DEV)
        assert t.total_s >= DEV.kernel_launch_overhead_s
