"""Unit tests for memory accounting: plan-cache bytes and the sampler."""

import tracemalloc

import numpy as np
import pytest

from repro.core import PlanCache, sfft
from repro.errors import ParameterError
from repro.obs import (
    MemorySampler,
    MetricsRegistry,
    global_registry,
    publish_plan_cache_memory,
)
from repro.signals import make_sparse_signal

N, K = 1024, 4


class TestPlanCacheBytes:
    def test_gauge_matches_hand_computed_nbytes(self):
        # Acceptance criterion: sfft.plan_cache.bytes equals the sum of the
        # resident filter arrays' nbytes, computed by hand from the plans.
        cache = PlanCache()
        p1 = cache.get_or_make(N, K, seed=1)
        p2 = cache.get_or_make(2 * N, K, seed=2)
        expected = sum(
            int(p.filt.time.nbytes) + int(p.filt.freq.nbytes)
            for p in (p1, p2)
        )
        assert cache.nbytes() == expected
        assert global_registry().gauge(
            "sfft.plan_cache.bytes"
        ).value == expected

    def test_built_workspace_is_attributed(self):
        cache = PlanCache()
        plan = cache.get_or_make(N, K, seed=1)
        before = cache.nbytes()
        sig = make_sparse_signal(N, K, seed=3)
        sfft(sig.time, plan=plan)  # builds the plan's lazy workspace
        ws_bytes = plan._workspace.memory_breakdown()["total_bytes"]
        assert ws_bytes > 0
        assert cache.nbytes() == before + ws_bytes
        # A cache hit republishes the gauge with the grown footprint.
        cache.get_or_make(N, K, seed=1)
        assert global_registry().gauge(
            "sfft.plan_cache.bytes"
        ).value == before + ws_bytes

    def test_breakdown_rows_sum_to_total(self):
        cache = PlanCache()
        plan = cache.get_or_make(N, K, seed=1)
        sig = make_sparse_signal(N, K, seed=3)
        sfft(sig.time, plan=plan)
        rows = cache.memory_breakdown()
        assert len(rows) == 1
        row = rows[0]
        assert (row["n"], row["k"]) == (N, K)
        assert row["total_bytes"] == cache.nbytes()

    def test_eviction_shrinks_the_gauge(self):
        cache = PlanCache(capacity=1)
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(2 * N, K, seed=2)  # evicts the seed=1 plan
        assert global_registry().gauge(
            "sfft.plan_cache.bytes"
        ).value == cache.nbytes()
        assert global_registry().gauge("sfft.plan_cache.entries").value == 1


class TestPublishHelper:
    class FakeCache:
        def __init__(self, nbytes, entries):
            self._nbytes, self._entries = nbytes, entries

        def nbytes(self):
            return self._nbytes

        def __len__(self):
            return self._entries

    def test_publishes_both_gauges_and_returns_total(self):
        reg = MetricsRegistry()
        total = publish_plan_cache_memory(self.FakeCache(4096, 3), reg)
        assert total == 4096
        assert reg.gauge("sfft.plan_cache.bytes").value == 4096
        assert reg.gauge("sfft.plan_cache.entries").value == 3

    def test_defaults_to_the_global_registry(self):
        publish_plan_cache_memory(self.FakeCache(512, 1))
        assert global_registry().gauge("sfft.plan_cache.bytes").value == 512


class TestMemorySampler:
    def test_interval_validated(self):
        with pytest.raises(ParameterError):
            MemorySampler(interval_s=0.0)

    def test_sample_sets_all_three_gauges(self):
        reg = MetricsRegistry()
        sampler = MemorySampler(reg)
        try:
            current, peak = sampler.sample()
            assert 0 <= current <= peak
            assert reg.gauge("sfft.mem.traced_bytes").value == current
            assert reg.gauge("sfft.mem.traced_peak_bytes").value == peak
            assert reg.gauge("sfft.mem.sample_ts_s").value >= 0
        finally:
            sampler.stop()

    def test_sample_sees_new_allocations(self):
        reg = MetricsRegistry()
        sampler = MemorySampler(reg)
        try:
            sampler.sample()
            block = np.zeros(1 << 18)  # 2 MiB, far above sampler noise
            current, _ = sampler.sample()
            assert current >= block.nbytes
        finally:
            sampler.stop()

    def test_daemon_thread_keeps_sampling(self):
        reg = MetricsRegistry()
        with MemorySampler(reg, interval_s=0.01) as sampler:
            first = reg.gauge("sfft.mem.sample_ts_s").value
            assert first is not None
            deadline_join = sampler._stop  # only to wait without sleeping
            deadline_join.wait(0.05)
        assert reg.gauge("sfft.mem.sample_ts_s").value >= first

    def test_double_start_rejected(self):
        sampler = MemorySampler(MetricsRegistry(), interval_s=0.05)
        sampler.start()
        try:
            with pytest.raises(ParameterError):
                sampler.start()
        finally:
            sampler.stop()

    def test_does_not_stop_tracing_it_did_not_start(self):
        already = tracemalloc.is_tracing()
        tracemalloc.start()
        try:
            sampler = MemorySampler(MetricsRegistry())
            sampler.sample()
            sampler.stop()
            assert tracemalloc.is_tracing()
        finally:
            if not already:
                tracemalloc.stop()

    def test_stop_releases_tracing_it_started(self):
        if tracemalloc.is_tracing():
            pytest.skip("an outer harness is already tracing")
        sampler = MemorySampler(MetricsRegistry())
        sampler.sample()
        assert tracemalloc.is_tracing()
        sampler.stop()
        assert not tracemalloc.is_tracing()
