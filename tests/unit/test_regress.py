"""Unit tests for baselines, trajectories, and the regression gate."""

import json

import pytest

from repro.obs import (
    BASELINE_SCHEMA,
    TRAJECTORY_SCHEMA,
    GateConfig,
    MetricsRegistry,
    Tracer,
    append_trajectory,
    compare_to_baseline,
    make_baseline,
    make_run_record,
    make_trajectory_points,
    prune_runs,
    prune_trajectory,
    render_verdict,
    validate_baseline,
    validate_trajectory,
)
from repro.obs.regress import (
    collect_samples,
    extract_metrics,
    parse_quantity,
    run_key,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


def make_record(name="demo", n=4096, k=4, *, perm_filter_s=0.010,
                makespan_s=0.005, err=1e-9, **extra_params):
    """A synthetic but schema-valid run record with known metric values."""
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("perm_filter", category="sfft"):
        clock.tick(perm_filter_s)
    with tr.span("bucket_fft", category="sfft"):
        clock.tick(0.002)
    tr.add_span("cusfft_layout_exec", start_s=0.0, duration_s=makespan_s,
                category="cusim", track="stream0")
    reg = MetricsRegistry()
    reg.gauge("cusim.timeline.makespan_s").set(makespan_s)
    reg.gauge("sfft.recovery.hits").set(k)
    return make_run_record(
        name,
        params={"n": n, "k": k, **extra_params},
        tracer=tr,
        registry=reg,
        results={"l1_error_per_coeff": err, "recovery_exact": True},
    )


class TestParseQuantity:
    @pytest.mark.parametrize("cell,expected", [
        (3, 3.0),
        (2.5, 2.5),
        ("42", 42.0),
        ("1.500 ms", 1.5e-3),
        ("12.30 us", 1.23e-5),
        ("8.1 ns", 8.1e-9),
        ("2.000 s", 2.0),
        ("14.90x", 14.9),
        ("75%", 0.75),
    ])
    def test_parses(self, cell, expected):
        assert parse_quantity(cell) == pytest.approx(expected)

    @pytest.mark.parametrize("cell", ["n/a", "2^18", "", None, True, [1]])
    def test_rejects_non_quantities(self, cell):
        assert parse_quantity(cell) is None


class TestExtraction:
    def test_run_key_axes(self):
        key, meta = run_key({"name": "fig5a", "params": {"n": 8, "k": 2}})
        assert key == "fig5a|n=8|k=2|default"
        assert meta["experiment"] == "fig5a" and meta["n"] == 8

    def test_key_distinguishes_variant(self):
        k1, _ = run_key({"name": "x", "params": {"variant": "baseline"}})
        k2, _ = run_key({"name": "x", "params": {"variant": "optimized"}})
        assert k1 != k2

    def test_span_classes(self):
        metrics = extract_metrics(make_record())
        assert metrics["span.perm_filter.total_s"][0] == "wall"
        # Simulated-timeline spans are modeled device time, not wall-clock.
        assert metrics["span.cusfft_layout_exec.total_s"][0] == "modeled"

    def test_registry_and_results_classes(self):
        metrics = extract_metrics(make_record())
        assert metrics["cusim.timeline.makespan_s"] == ("modeled", 0.005)
        assert metrics["results.l1_error_per_coeff"][0] == "accuracy"
        # Direction-ambiguous sfft gauges and booleans are not gated on.
        assert "sfft.recovery.hits" not in metrics
        assert "results.recovery_exact" not in metrics

    def test_memory_class_extraction(self):
        reg = MetricsRegistry()
        reg.gauge("sfft.plan_cache.bytes").set(4096.0)
        reg.gauge("cusim.kernel.wire_bytes").set(1024.0)
        record = make_run_record(
            "mem", registry=reg, results={"workspace_bytes": 2048},
        )
        metrics = extract_metrics(record)
        assert metrics["sfft.plan_cache.bytes"] == ("memory", 4096.0)
        assert metrics["results.workspace_bytes"] == ("memory", 2048.0)
        # Modeled wire traffic keeps the deterministic class committed
        # baselines already use; the memory class is for measured bytes.
        assert metrics["cusim.kernel.wire_bytes"] == ("modeled", 1024.0)

    def test_rows_parsed_as_modeled(self):
        record = make_run_record(
            "fig5a",
            headers=["n", "cusFFT opt", "L1 error"],
            rows=[["2^18", "1.500 ms", "2e-09"]],
        )
        metrics = extract_metrics(record)
        assert metrics["row.2^18.cusfft_opt"] == (
            "modeled", pytest.approx(1.5e-3)
        )
        assert metrics["row.2^18.l1_error"][0] == "accuracy"

    def test_collect_samples_groups_by_key(self):
        grouped = collect_samples([make_record(), make_record(),
                                   make_record(n=8192)])
        assert len(grouped) == 2
        slot = grouped["demo|n=4096|k=4|default"]
        assert slot["metrics"]["span.perm_filter.total_s"]["values"] == [
            pytest.approx(0.010)] * 2


class TestBaseline:
    def test_snapshot_is_valid_and_versioned(self):
        doc = make_baseline([make_record() for _ in range(3)])
        assert doc["schema"] == BASELINE_SCHEMA
        assert validate_baseline(doc) == []
        stat = doc["entries"]["demo|n=4096|k=4|default"]["metrics"][
            "span.perm_filter.total_s"]
        assert stat["median"] == pytest.approx(0.010)
        assert stat["count"] == 3 and stat["iqr"] == pytest.approx(0.0)

    def test_validator_names_offending_entry(self):
        doc = make_baseline([make_record()])
        doc["entries"]["demo|n=4096|k=4|default"]["metrics"][
            "span.perm_filter.total_s"]["median"] = "fast"
        problems = validate_baseline(doc)
        assert any("demo|n=4096|k=4|default" in p and
                   "span.perm_filter.total_s" in p and "median" in p
                   for p in problems)

    def test_validator_rejects_wrong_schema(self):
        assert validate_baseline({"schema": "nope", "entries": {}})
        assert validate_baseline([]) != []


class TestTrajectory:
    def test_points_one_per_record(self):
        points = make_trajectory_points(
            [make_record(), make_record()], session="s1"
        )
        assert len(points) == 2
        assert all(p["session"] == "s1" for p in points)
        doc = {"schema": TRAJECTORY_SCHEMA, "points": points}
        assert validate_trajectory(doc) == []

    def test_append_creates_then_extends(self, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        assert append_trajectory(path, [make_record()]) == 1
        assert append_trajectory(
            path,
            [make_record(perm_filter_s=0.011),
             make_record(perm_filter_s=0.012)],
        ) == 2
        doc = json.loads(path.read_text())
        assert len(doc["points"]) == 3
        assert validate_trajectory(doc) == []

    def test_append_skips_verbatim_duplicates(self, tmp_path):
        # The bench-session hook and bench_gate may both see the same
        # runs file; identical (key, metrics) points must not double
        # history.
        path = tmp_path / "BENCH_TRAJECTORY.json"
        assert append_trajectory(path, [make_record()]) == 1
        assert append_trajectory(path, [make_record()], session="gate") == 0
        assert len(json.loads(path.read_text())["points"]) == 1

    def test_append_refuses_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        path.write_text('{"schema": "wrong", "points": []}')
        with pytest.raises(ValueError):
            append_trajectory(path, [make_record()])

    def test_validator_names_offending_point_index(self):
        doc = {"schema": TRAJECTORY_SCHEMA,
               "points": [{"key": "a", "metrics": {"m": 1.0}},
                          {"key": "", "metrics": {"m": "fast"}}]}
        problems = validate_trajectory(doc)
        assert any(p.startswith("points[1]") for p in problems)
        assert not any(p.startswith("points[0]") for p in problems)


class TestPrune:
    def _runs_file(self, tmp_path, records):
        path = tmp_path / "runs.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return path

    def test_runs_dedupe_keeps_order(self, tmp_path):
        a, b = make_record(), make_record(perm_filter_s=0.02)
        path = self._runs_file(tmp_path, [a, b, a, b, a])
        assert prune_runs(path) == (2, 3)
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["params"] for ln in lines] \
            == [a["params"], b["params"]]

    def test_runs_keep_newest_per_key(self, tmp_path):
        records = [make_record(perm_filter_s=0.01 * (i + 1))
                   for i in range(5)]
        path = self._runs_file(tmp_path, records)
        assert prune_runs(path, keep_per_key=2) == (2, 3)
        kept = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert kept == records[-2:]  # newest two, still in order

    def test_runs_refuse_invalid_line(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"schema": "wrong"}\n')
        before = path.read_text()
        with pytest.raises(ValueError):
            prune_runs(path)
        assert path.read_text() == before  # refused, not rewritten

    def test_runs_bad_keep_raises(self, tmp_path):
        path = self._runs_file(tmp_path, [make_record()])
        with pytest.raises(ValueError):
            prune_runs(path, keep_per_key=0)

    def test_trajectory_dedupe_and_keep(self, tmp_path):
        points = make_trajectory_points(
            [make_record(perm_filter_s=0.01 * (i + 1)) for i in range(3)],
        )
        path = tmp_path / "traj.json"
        path.write_text(json.dumps(
            {"schema": TRAJECTORY_SCHEMA, "points": points + points[:1]}
        ))
        assert prune_trajectory(path) == (3, 1)
        assert prune_trajectory(path, keep_per_key=1) == (1, 2)
        doc = json.loads(path.read_text())
        assert validate_trajectory(doc) == []
        assert len(doc["points"]) == 1

    def test_trajectory_refuses_corrupt_doc(self, tmp_path):
        path = tmp_path / "traj.json"
        path.write_text('{"schema": "wrong", "points": []}')
        with pytest.raises(ValueError):
            prune_trajectory(path)


class TestGate:
    def _baseline(self):
        return make_baseline([make_record() for _ in range(3)])

    def test_unperturbed_run_passes(self):
        verdict = compare_to_baseline(self._baseline(), [make_record()])
        assert verdict.status == "ok"
        assert verdict.regressions() == []

    def test_slowed_step_is_named(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=0.030)]
        )
        assert verdict.status == "regression"
        names = {c.metric for c in verdict.regressions()}
        assert "span.perm_filter.total_s" in names
        assert "span.bucket_fft.total_s" not in names

    def test_noise_band_absorbs_jitter(self):
        # +20% on a wall metric is inside the 30% class threshold.
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=0.012)]
        )
        assert verdict.status == "ok"

    def test_min_abs_floor_ignores_tiny_shifts(self):
        # 3x on a sub-millisecond wall step stays under the 1 ms floor.
        base = make_baseline([make_record(perm_filter_s=0.0002)])
        verdict = compare_to_baseline(
            base, [make_record(perm_filter_s=0.0006)]
        )
        assert all(c.status != "regression" for c in verdict.checks
                   if c.metric == "span.perm_filter.total_s")

    def test_improvement_reported_not_failing(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=0.003)]
        )
        assert verdict.status == "ok"
        assert any(c.status == "improvement" and
                   c.metric == "span.perm_filter.total_s"
                   for c in verdict.checks)

    def test_modeled_class_is_tight(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(makespan_s=0.0057)]
        )
        assert any(c.status == "regression" and
                   c.metric == "cusim.timeline.makespan_s"
                   for c in verdict.checks)

    def _mem_record(self, nbytes):
        reg = MetricsRegistry()
        reg.gauge("sfft.plan_cache.bytes").set(float(nbytes))
        return make_run_record("mem", params={"n": 4096}, registry=reg)

    def test_memory_class_noise_band(self):
        # +20% footprint is inside the 25% memory threshold.
        base = make_baseline([self._mem_record(1 << 20)])
        verdict = compare_to_baseline(
            base, [self._mem_record(1.2 * (1 << 20))]
        )
        assert verdict.status == "ok"

    def test_memory_regression_is_named(self):
        base = make_baseline([self._mem_record(1 << 20)])
        verdict = compare_to_baseline(
            base, [self._mem_record(1.5 * (1 << 20))]
        )
        assert any(c.status == "regression" and
                   c.metric == "sfft.plan_cache.bytes"
                   for c in verdict.checks)

    def test_memory_min_abs_floor_is_one_page(self):
        # 3x growth that stays under 4 KiB absolute is not a regression.
        base = make_baseline([self._mem_record(1024)])
        verdict = compare_to_baseline(base, [self._mem_record(3072)])
        assert all(c.status != "regression" for c in verdict.checks)

    def test_classes_filter(self):
        config = GateConfig(classes=("modeled",))
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=10.0)], config
        )
        assert verdict.status == "ok"
        assert all(c.klass == "modeled" for c in verdict.checks)

    def test_new_and_missing_do_not_fail(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(name="other")]
        )
        assert verdict.status == "ok"
        statuses = {c.status for c in verdict.checks}
        assert statuses == {"new", "missing"}

    def test_verdict_json_shape(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=0.030)]
        )
        doc = verdict.to_json()
        json.dumps(doc)
        assert doc["schema"] == "repro.gate/1"
        assert doc["status"] == "regression" and doc["regressions"] >= 1

    def test_render_names_regression(self):
        verdict = compare_to_baseline(
            self._baseline(), [make_record(perm_filter_s=0.030)]
        )
        out = render_verdict(verdict)
        assert "REGRESSION" in out and "span.perm_filter.total_s" in out
