"""Unit tests for the exactly-sparse (sFFT-3.0-style) transform."""

import numpy as np
import pytest

from repro.core import sfft_exact
from repro.errors import ParameterError, RecoveryError
from repro.signals import make_sparse_signal


class TestExactRecovery:
    @pytest.mark.parametrize(
        "n,k,seed",
        [(1 << 12, 1, 0), (1 << 12, 4, 1), (1 << 14, 20, 2), (1 << 16, 100, 3)],
    )
    def test_support_and_values_exact(self, n, k, seed):
        sig = make_sparse_signal(n, k, seed=seed)
        res, stats = sfft_exact(sig.time, k, seed=seed + 100)
        assert set(res.locations.tolist()) == set(sig.locations.tolist())
        for f, v in zip(sig.locations, sig.values):
            assert abs(res.as_dict()[int(f)] - v) < 1e-6 * abs(v)
        assert stats.rounds >= 1

    def test_values_at_filter_tolerance(self):
        sig = make_sparse_signal(1 << 16, 50, seed=9)
        res, _ = sfft_exact(sig.time, 50, seed=10)
        worst = max(
            abs(res.as_dict()[int(f)] - v) / abs(v)
            for f, v in zip(sig.locations, sig.values)
        )
        assert worst < 1e-7

    def test_uses_fewer_samples_than_windowed_at_scale(self):
        from repro.core import make_plan

        n, k = 1 << 18, 100
        sig = make_sparse_signal(n, k, seed=11)
        _, stats = sfft_exact(sig.time, k, seed=12)
        plan = make_plan(n, k, seed=13)  # accurate-profile windowed plan
        assert stats.samples_touched < plan.filt.width * plan.loops

    def test_peeling_resolves_collisions(self):
        # Congruent-mod-B frequencies would never separate under plain
        # aliasing; the windowed hash must still resolve them.
        n, k = 1 << 14, 4
        B_guess = 64  # bucket_factor 4 * k = 16 -> but use crowded custom
        locs = np.array([100, 100 + 1024, 100 + 2048, 100 + 4096])
        vals = n * np.exp(1j * np.linspace(0, 3, 4))
        sig = make_sparse_signal(n, 4, locations=locs, values=vals)
        res, stats = sfft_exact(sig.time, 4, bucket_factor=2, seed=14)
        assert set(res.locations.tolist()) == set(locs.tolist())

    def test_stats_accounting(self):
        sig = make_sparse_signal(1 << 12, 8, seed=15)
        _, stats = sfft_exact(sig.time, 8, seed=16)
        assert stats.samples_touched > 0
        assert stats.singletons_found >= 8
        assert len(stats.per_round_found) == stats.rounds


class TestExactFailureModes:
    def test_noisy_input_raises_in_strict_mode(self):
        sig = make_sparse_signal(1 << 12, 4, seed=20)
        rng = np.random.default_rng(21)
        noisy = sig.time + 0.01 * rng.standard_normal(1 << 12)
        with pytest.raises(RecoveryError):
            sfft_exact(noisy, 4, seed=22, strict=True)

    def test_non_strict_returns_partial(self):
        sig = make_sparse_signal(1 << 12, 4, seed=23)
        rng = np.random.default_rng(24)
        noisy = sig.time + 0.01 * rng.standard_normal(1 << 12)
        res, _ = sfft_exact(noisy, 4, seed=25, strict=False)
        assert res.k_found >= 0  # best effort, no exception

    def test_validation(self):
        with pytest.raises(ParameterError):
            sfft_exact(np.zeros(1000, complex), 4)   # not a power of two
        with pytest.raises(ParameterError):
            sfft_exact(np.zeros(16, complex), 16)    # k >= n
        with pytest.raises(ParameterError):
            sfft_exact(np.zeros(16, complex), 0)

    def test_deterministic_given_seed(self):
        sig = make_sparse_signal(1 << 12, 6, seed=26)
        a, _ = sfft_exact(sig.time, 6, seed=27)
        b, _ = sfft_exact(sig.time, 6, seed=27)
        assert (a.locations == b.locations).all()
        assert np.array_equal(a.values, b.values)


class TestExactEdgeCases:
    def test_zero_signal_returns_empty(self):
        res, stats = sfft_exact(np.zeros(1024, dtype=complex), 4, seed=1)
        assert res.k_found == 0
        assert stats.singletons_found == 0

    def test_dc_component(self):
        res, _ = sfft_exact(np.ones(1024, dtype=complex), 1, seed=2)
        assert res.locations.tolist() == [0]
        assert abs(res.values[0] - 1024) < 1e-6

    def test_nyquist_component(self):
        t = np.arange(1024)
        x = np.exp(2j * np.pi * 512 * t / 1024)
        res, _ = sfft_exact(x, 1, seed=3)
        assert res.locations.tolist() == [512]
        assert abs(res.values[0] - 1024) < 1e-6

    def test_adjacent_frequencies_separated(self):
        # Two coefficients one bin apart: always in the same or adjacent
        # bucket under any permutation scale... the random dilation spreads
        # them; peeling must still resolve both.
        n = 1 << 12
        locs = np.array([777, 778])
        vals = np.array([n + 0j, -n + 0j])
        sig = make_sparse_signal(n, 2, locations=locs, values=vals)
        res, _ = sfft_exact(sig.time, 2, seed=4)
        assert set(res.locations.tolist()) == {777, 778}
