"""Unit tests for the simulated cuFFT plan."""

import numpy as np
import pytest

from repro.cufft import CufftPlan
from repro.cusim import KEPLER_K20X
from repro.errors import ParameterError

DEV = KEPLER_K20X


class TestFunctional:
    def test_matches_numpy_1d(self, rng):
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        assert np.allclose(CufftPlan(1024).execute(x), np.fft.fft(x))

    def test_matches_numpy_batched(self, rng):
        x = rng.standard_normal((4, 256)) + 1j * rng.standard_normal((4, 256))
        out = CufftPlan(256, batch=4).execute(x)
        assert np.allclose(out, np.fft.fft(x, axis=-1))

    def test_inverse_roundtrip(self, rng):
        x = rng.standard_normal((2, 128)) + 0j
        plan = CufftPlan(128, batch=2)
        assert np.allclose(plan.inverse(plan.execute(x)), x)

    def test_shape_validated(self):
        with pytest.raises(ParameterError):
            CufftPlan(256, batch=2).execute(np.zeros(256, complex))
        with pytest.raises(ParameterError):
            CufftPlan(256).execute(np.zeros(128, complex))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            CufftPlan(100)

    def test_bad_batch_rejected(self):
        with pytest.raises(ParameterError):
            CufftPlan(256, batch=0)


class TestCostModel:
    def test_passes_grow_with_n(self):
        assert CufftPlan(1 << 27).passes > CufftPlan(1 << 12).passes

    def test_large_transform_bandwidth_bound(self):
        plan = CufftPlan(1 << 27)
        t = plan.estimated_time(DEV)
        floor = plan.passes * 2 * (1 << 27) * 16 / DEV.effective_bandwidth
        assert t == pytest.approx(floor, rel=0.2)

    def test_nlogn_scaling(self):
        # Doubling n slightly more than doubles time (extra pass every 3
        # octaves).
        t1 = CufftPlan(1 << 24).estimated_time(DEV)
        t2 = CufftPlan(1 << 25).estimated_time(DEV)
        assert 1.8 < t2 / t1 < 2.9

    def test_time_independent_of_content_only_size(self):
        # k plays no role for the dense transform (Figure 5(b)'s flat lines).
        assert CufftPlan(1 << 20).estimated_time(DEV) == CufftPlan(
            1 << 20
        ).estimated_time(DEV)

    def test_batched_cheaper_than_looped(self):
        plan = CufftPlan(4096, batch=16)
        assert plan.estimated_time(DEV) < plan.estimated_time_unbatched(DEV)

    def test_batch_amortizes_launches(self):
        # The batched win comes from launch amortization: per-transform
        # overhead shrinks with batch size.
        small = CufftPlan(4096, batch=2)
        big = CufftPlan(4096, batch=64)
        per_small = small.estimated_time(DEV) / 2
        per_big = big.estimated_time(DEV) / 64
        assert per_big < per_small

    def test_kernel_specs_count(self):
        plan = CufftPlan(1 << 12, batch=3)
        assert len(plan.kernel_specs()) == plan.passes
