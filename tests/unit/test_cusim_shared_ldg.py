"""Unit tests for the shared-memory bank-conflict model and the read-only
(__ldg) load path."""

import numpy as np
import pytest

from repro.cusim import (
    KEPLER_K20X,
    AccessPattern,
    GlobalAccess,
    KernelSpec,
    SharedAccess,
    bank_conflict_factor,
    estimate_kernel,
    measure_bank_conflicts,
    shared_time,
    transaction_count,
    wire_bytes,
)
from repro.cusim.memory import segment_bytes
from repro.errors import ParameterError

DEV = KEPLER_K20X


class TestBankConflicts:
    @pytest.mark.parametrize(
        "stride,factor",
        [(1, 1), (2, 2), (3, 1), (4, 4), (8, 8), (16, 16), (32, 32), (33, 1), (64, 32)],
    )
    def test_textbook_strides(self, stride, factor):
        assert bank_conflict_factor(stride) == factor

    def test_broadcast_stride_zero_free(self):
        assert bank_conflict_factor(0) == 1

    def test_negative_stride_rejected(self):
        with pytest.raises(ParameterError):
            bank_conflict_factor(-1)

    def test_measured_conflict_free(self):
        # 32 lanes, consecutive words: one word per bank.
        assert measure_bank_conflicts(np.arange(32)) == 1

    def test_measured_two_way(self):
        assert measure_bank_conflicts(np.arange(32) * 2) == 2

    def test_measured_broadcast_free(self):
        # All lanes read the same word: hardware broadcasts.
        assert measure_bank_conflicts(np.zeros(32, dtype=np.int64)) == 1

    def test_measured_full_serialization(self):
        # 32 distinct words all in bank 0.
        assert measure_bank_conflicts(np.arange(32) * 32) == 32

    def test_measured_matches_analytic_for_strides(self):
        for stride in (1, 2, 4, 8, 16, 32):
            addr = np.arange(32) * stride
            assert measure_bank_conflicts(addr) == bank_conflict_factor(stride)

    def test_measured_input_validation(self):
        with pytest.raises(ParameterError):
            measure_bank_conflicts(np.zeros(64, dtype=np.int64))
        with pytest.raises(ParameterError):
            measure_bank_conflicts(np.zeros(4))


class TestSharedTime:
    def test_empty_is_free(self):
        assert shared_time((), DEV) == 0.0

    def test_conflicts_scale_linearly(self):
        base = shared_time((SharedAccess(10**7, 1),), DEV)
        conflicted = shared_time((SharedAccess(10**7, 8),), DEV)
        assert conflicted == pytest.approx(8 * base)

    def test_kernel_integration(self):
        free = KernelSpec(
            "k", 64, 256, shared_accesses=(SharedAccess(10**7, 1),)
        )
        slow = KernelSpec(
            "k", 64, 256, shared_accesses=(SharedAccess(10**7, 32),)
        )
        assert (
            estimate_kernel(slow, DEV).compute_s
            > 10 * estimate_kernel(free, DEV).compute_s
        )

    def test_invalid_access(self):
        with pytest.raises(ParameterError):
            SharedAccess(-1, 1)
        with pytest.raises(ParameterError):
            SharedAccess(1, -1)


class TestLdgPath:
    def test_segment_size_switches(self):
        normal = GlobalAccess(AccessPattern.RANDOM, 10, 16)
        ldg = GlobalAccess(AccessPattern.RANDOM, 10, 16, use_ldg=True)
        assert segment_bytes(normal, DEV) == 128
        assert segment_bytes(ldg, DEV) == 32

    def test_random_gather_wire_traffic_quartered(self):
        normal = GlobalAccess(AccessPattern.RANDOM, 1000, 16)
        ldg = GlobalAccess(AccessPattern.RANDOM, 1000, 16, use_ldg=True)
        assert wire_bytes(normal, DEV) == 4 * wire_bytes(ldg, DEV)

    def test_coalesced_unaffected_in_wire_terms(self):
        # Coalesced 16B elements: 128B segments are already fully used, so
        # the finer granularity moves the same bytes.
        normal = GlobalAccess(AccessPattern.COALESCED, 1024, 16)
        ldg = GlobalAccess(AccessPattern.COALESCED, 1024, 16, use_ldg=True)
        assert wire_bytes(normal, DEV) == wire_bytes(ldg, DEV)

    def test_small_element_random_gains_more(self):
        # 2-byte random loads: 128/32 = 4x fewer wire bytes via texture.
        normal = GlobalAccess(AccessPattern.RANDOM, 1000, 2)
        ldg = GlobalAccess(AccessPattern.RANDOM, 1000, 2, use_ldg=True)
        assert wire_bytes(normal, DEV) // wire_bytes(ldg, DEV) == 4

    def test_writes_rejected(self):
        with pytest.raises(ParameterError):
            GlobalAccess(
                AccessPattern.COALESCED, 10, 16, is_write=True, use_ldg=True
            )

    def test_transactions_still_counted(self):
        a = GlobalAccess(AccessPattern.RANDOM, 100, 16, use_ldg=True)
        assert transaction_count(a, DEV) == 100

    def test_cusfft_ldg_config_speeds_up_model(self):
        from repro.gpu import CusFFT, OPTIMIZED

        kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=1000)
        off = CusFFT.create(1 << 26, 1000, config=OPTIMIZED, **kw).estimated_time()
        on = CusFFT.create(
            1 << 26, 1000, config=OPTIMIZED.with_(use_ldg=True), **kw
        ).estimated_time()
        assert on < off

    def test_ldg_label(self):
        from repro.gpu import OPTIMIZED

        assert "ldg" in OPTIMIZED.with_(use_ldg=True).label()

    def test_functional_results_identical_with_ldg(self):
        # __ldg changes only the data path, never the data.
        from repro.gpu import CusFFT, OPTIMIZED
        from repro.signals import make_sparse_signal

        sig = make_sparse_signal(1 << 12, 8, seed=60)
        a = CusFFT.create(1 << 12, 8, config=OPTIMIZED).execute(sig.time, seed=61)
        b = CusFFT.create(
            1 << 12, 8, config=OPTIMIZED.with_(use_ldg=True)
        ).execute(sig.time, seed=61)
        assert (a.result.locations == b.result.locations).all()
        assert np.array_equal(a.result.values, b.result.values)


class TestSpecAudit:
    """Declared access patterns must match measured addresses for the real
    cusFFT kernels — the model is validated, not just asserted."""

    def test_partition_gather_measures_random(self):
        from repro.cusim import audit_addresses, AccessPattern
        from repro.gpu.kernels import gather_addresses
        from tests.conftest import cached_plan

        plan = cached_plan(1 << 14, 16)
        perm = plan.permutations[0]
        audit = audit_addresses(gather_addresses(perm, 2048), 16, DEV)
        assert audit.classified is AccessPattern.RANDOM
        assert audit.matches(AccessPattern.RANDOM)
        assert audit.transactions_per_element > 0.85

    def test_filter_read_measures_coalesced(self):
        from repro.cusim import audit_addresses, AccessPattern

        addr = np.arange(2048) * 16  # filter taps are read linearly
        audit = audit_addresses(addr, 16, DEV)
        assert audit.classified is AccessPattern.COALESCED
        assert audit.matches(AccessPattern.COALESCED)

    def test_remap_write_measures_coalesced(self):
        from repro.cusim import audit_addresses, AccessPattern

        # A' is written at tid*16 within each chunk.
        addr = np.arange(4096) * 16
        assert (
            audit_addresses(addr, 16, DEV).classified
            is AccessPattern.COALESCED
        )

    def test_broadcast_classified(self):
        from repro.cusim import classify_pattern, AccessPattern

        addr = np.zeros(256, dtype=np.int64)
        assert classify_pattern(addr, 8, DEV) is AccessPattern.BROADCAST

    def test_audit_rejects_empty(self):
        from repro.cusim import audit_addresses
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            audit_addresses(np.empty(0, dtype=np.int64), 16, DEV)

    def test_declared_specs_match_measured_for_all_loops(self):
        # End-to-end audit: for every permutation of a real plan, the
        # Algorithm-2 gather must still be effectively random (the cost
        # model's key assumption about the perm+filter step).
        from repro.cusim import audit_addresses, AccessPattern
        from repro.gpu.kernels import gather_addresses
        from tests.conftest import cached_plan

        plan = cached_plan(1 << 14, 16)
        for perm in plan.permutations:
            audit = audit_addresses(
                gather_addresses(perm, plan.filt.width), 16, DEV
            )
            assert audit.matches(AccessPattern.RANDOM, rel_tol=0.2)
