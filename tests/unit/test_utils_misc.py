"""Unit tests for RNG plumbing, validation helpers, and table rendering."""

import numpy as np
import pytest

from repro.errors import ParameterError, ReproError
from repro.utils.rng import ensure_rng, spawn
from repro.utils.tables import format_ratio, format_seconds, format_table
from repro.utils.validation import (
    as_complex_signal,
    check_in_range,
    check_positive_int,
    check_power_of_two,
    require,
)


class TestEnsureRng:
    def test_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, 5)
        b = ensure_rng(42).integers(0, 1 << 30, 5)
        assert (a == b).all()

    def test_passthrough(self):
        g = np.random.default_rng(7)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_streams_differ(self):
        kids = spawn(ensure_rng(3), 4)
        assert len(kids) == 4
        draws = [g.integers(0, 1 << 30) for g in kids]
        assert len(set(draws)) > 1

    def test_spawn_reproducible(self):
        a = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(3), 3)]
        b = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(3), 3)]
        assert a == b


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ParameterError, match="boom"):
            require(False, "boom")

    def test_check_positive_int(self):
        assert check_positive_int(5, "x") == 5
        assert check_positive_int(np.int64(9), "x") == 9

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "a", None])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_positive_int(bad, "x")

    def test_check_power_of_two(self):
        assert check_power_of_two(64, "n") == 64
        with pytest.raises(ParameterError):
            check_power_of_two(48, "n")

    def test_check_in_range(self):
        check_in_range(5, "x", 1, 10)
        with pytest.raises(ParameterError):
            check_in_range(11, "x", 1, 10)

    def test_as_complex_signal_widens_real(self):
        out = as_complex_signal(np.ones(8))
        assert out.dtype == np.complex128

    def test_as_complex_signal_length_check(self):
        with pytest.raises(ParameterError):
            as_complex_signal(np.ones(8), n=16)

    def test_as_complex_signal_rejects_2d(self):
        with pytest.raises(ParameterError):
            as_complex_signal(np.ones((2, 4)))

    def test_as_complex_signal_rejects_empty(self):
        with pytest.raises(ParameterError):
            as_complex_signal(np.empty(0))

    def test_as_complex_signal_rejects_strings(self):
        with pytest.raises(ParameterError):
            as_complex_signal(np.array(["a", "b"]))

    def test_parameter_error_is_repro_and_value_error(self):
        assert issubclass(ParameterError, ReproError)
        assert issubclass(ParameterError, ValueError)


class TestTables:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5).endswith(" s")
        assert format_seconds(2.5e-3).endswith(" ms")
        assert format_seconds(2.5e-6).endswith(" us")
        assert format_seconds(2.5e-9).endswith(" ns")
        assert format_seconds(float("nan")) == "n/a"

    def test_format_ratio(self):
        assert format_ratio(14.94) == "14.94x"
        assert format_ratio(float("nan")) == "n/a"

    def test_format_table_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[-1]
        widths = {len(line.rstrip()) for line in lines[1:2]}
        assert all(len(line) <= max(widths) + 10 for line in lines)

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestAsciiplotEdges:
    def test_flat_series_handled(self):
        from repro.utils.asciiplot import line_chart

        out = line_chart([1, 2, 4], {"flat": [5.0, 5.0, 5.0]})
        assert "legend" in out

    def test_identical_x_rejected(self):
        from repro.errors import ParameterError
        from repro.utils.asciiplot import line_chart

        with pytest.raises(ParameterError):
            line_chart([3, 3], {"a": [1.0, 2.0]})

    def test_empty_series_rejected(self):
        from repro.errors import ParameterError
        from repro.utils.asciiplot import line_chart

        with pytest.raises(ParameterError):
            line_chart([1, 2], {})

    def test_many_series_distinct_markers(self):
        from repro.utils.asciiplot import line_chart

        series = {f"s{i}": [float(i + 1), float(i + 2)] for i in range(6)}
        out = line_chart([1, 10], series)
        legend = out.splitlines()[-1]
        markers = [p.split("=")[0].strip() for p in legend.split("legend:")[1].split(",")]
        assert len(set(markers)) == len(markers)
