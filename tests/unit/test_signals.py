"""Unit tests for signal/workload generation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.signals import (
    add_awgn,
    make_gps_correlation,
    make_harmonic_tones,
    make_seismic_reflectivity,
    make_sparse_signal,
    make_wideband_channels,
    random_support,
    signal_power,
    snr_db,
)


class TestRandomSupport:
    def test_distinct_and_in_range(self, rng):
        locs = random_support(1024, 50, rng)
        assert len(set(locs.tolist())) == 50
        assert locs.min() >= 0 and locs.max() < 1024

    def test_min_separation_enforced(self, rng):
        locs = random_support(1024, 20, rng, min_separation=16)
        gaps = np.diff(np.sort(locs))
        assert gaps.min() >= 16

    def test_infeasible_separation(self, rng):
        with pytest.raises(ParameterError):
            random_support(64, 10, rng, min_separation=10)

    def test_k_exceeds_n(self, rng):
        with pytest.raises(ParameterError):
            random_support(8, 9, rng)


class TestSparseSignal:
    def test_spectrum_matches_fft(self):
        sig = make_sparse_signal(512, 5, seed=1)
        spec = np.fft.fft(sig.time)
        dense = sig.dense_spectrum()
        assert np.abs(spec - dense).max() < 1e-8 * np.abs(dense).max()

    def test_exactly_k_sparse(self):
        sig = make_sparse_signal(512, 5, seed=2)
        spec = np.fft.fft(sig.time)
        off = np.delete(np.abs(spec), sig.locations)
        assert off.max() < 1e-7 * np.abs(sig.values).min()

    def test_explicit_locations_and_values(self):
        locs = np.array([3, 100, 200])
        vals = np.array([1 + 1j, 2.0, -3j])
        sig = make_sparse_signal(512, 3, locations=locs, values=vals)
        assert (sig.locations == locs).all()
        assert np.allclose(sig.values, vals)

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ParameterError):
            make_sparse_signal(512, 3, locations=np.array([1, 1, 2]))

    def test_value_count_mismatch(self):
        with pytest.raises(ParameterError):
            make_sparse_signal(512, 2, locations=np.array([1, 2]), values=np.ones(3))

    def test_amplitude_scale(self):
        sig = make_sparse_signal(256, 1, seed=3, amplitude=2.0)
        assert abs(sig.values[0]) == pytest.approx(2.0 * 256)

    def test_deterministic_by_seed(self):
        a = make_sparse_signal(256, 4, seed=9)
        b = make_sparse_signal(256, 4, seed=9)
        assert (a.locations == b.locations).all()
        assert np.allclose(a.time, b.time)

    def test_with_time_shape_check(self):
        sig = make_sparse_signal(256, 4, seed=9)
        with pytest.raises(ParameterError):
            sig.with_time(np.zeros(128, complex))

    def test_properties(self):
        sig = make_sparse_signal(256, 4, seed=9)
        assert sig.n == 256 and sig.k == 4


class TestNoise:
    def test_signal_power(self):
        assert signal_power(np.full(10, 2.0 + 0j)) == pytest.approx(4.0)

    def test_power_of_empty(self):
        with pytest.raises(ParameterError):
            signal_power(np.empty(0))

    def test_awgn_hits_requested_snr(self):
        x = np.exp(2j * np.pi * np.arange(4096) * 5 / 4096)
        noisy, noise = add_awgn(x, 20.0, seed=4)
        assert snr_db(x, noise) == pytest.approx(20.0, abs=0.5)
        assert np.allclose(noisy - noise, x)

    def test_snr_infinite_for_zero_noise(self):
        x = np.ones(16, complex)
        assert snr_db(x, np.zeros(16)) == float("inf")


class TestWorkloads:
    def test_wideband_channels_ground_truth(self):
        scene = make_wideband_channels(4096, 16, 0.25, seed=5)
        assert scene.occupied.sum() == 4
        width = 4096 // 16
        for loc in scene.signal.locations:
            assert scene.occupied[loc // width]

    def test_wideband_invalid_occupancy(self):
        with pytest.raises(ParameterError):
            make_wideband_channels(4096, 16, 0.0)

    def test_wideband_channels_must_divide(self):
        with pytest.raises(ParameterError):
            make_wideband_channels(4096, 17, 0.5)

    def test_harmonic_tones_structure(self):
        sig = make_harmonic_tones(4096, 32, 8, seed=6)
        assert (sig.locations == 32 * np.arange(1, 9)).all()
        mags = np.abs(sig.values)
        assert (np.diff(mags) < 0).all()  # decaying overtones

    def test_harmonic_tones_band_limit(self):
        with pytest.raises(ParameterError):
            make_harmonic_tones(64, 16, 8)

    def test_gps_correlation_spike(self):
        product, code, delay = make_gps_correlation(4096, 137, 3, seed=7)
        corr = np.fft.ifft(product)
        assert int(np.argmax(np.abs(corr))) == delay

    def test_gps_delay_range(self):
        with pytest.raises(ParameterError):
            make_gps_correlation(1024, 1024, 0)

    def test_seismic_reflectors_recoverable(self):
        trace, times = make_seismic_reflectivity(2048, 6, seed=8, snr=None)
        assert times.size == 6
        assert trace.dtype == np.float64
        # Energy concentrates near the reflectors.
        assert np.abs(trace).max() > 10 * np.abs(trace).mean()
