"""Process-mode executor: crash semantics, teardown, start-method identity.

Thread-mode behavior (metrics family, span DAG, strict errors, shard
geometry) is pinned by ``test_executor.py``; the property matrix covers
bit-identity in both modes.  This module covers what is *specific* to
the shared-memory process pool: a SIGKILL'd worker must surface as a
clean :class:`~repro.errors.ExecutorError` with every segment unlinked
and the failure metered; the pool must recover on the next run; seeded
Comb masks must be identical under fork and forkserver; and the merged
telemetry must carry the same span DAG shape thread mode produces.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import ShardedExecutor, sfft_batch_fused
from repro.core.executor import EXECUTOR_TRACK, MODE_ENV
from repro.errors import ExecutorError, ParameterError, RecoveryError
from repro.obs import MetricsRegistry, Tracer
from repro.signals import make_sparse_signal
from tests.conftest import cached_plan

_N, _K, _S = 2048, 4, 7


@pytest.fixture(scope="module")
def plan():
    return cached_plan(_N, _K)


@pytest.fixture(scope="module")
def stack():
    return np.stack([
        make_sparse_signal(_N, _K, seed=40 + t).time for t in range(_S)
    ])


def _shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-tmpfs host
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("sfft")]


@pytest.fixture(autouse=True)
def no_leaks():
    before = _shm_entries()
    yield
    leaked = [f for f in _shm_entries() if f not in before]
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


def _assert_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        np.testing.assert_array_equal(g.locations, w.locations)
        np.testing.assert_array_equal(g.values, w.values)
        np.testing.assert_array_equal(g.votes, w.votes)


class TestModeSurface:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError, match="mode"):
            ShardedExecutor(workers=2, mode="fiber")

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ParameterError, match="start_method"):
            ShardedExecutor(workers=2, mode="process", start_method="warp")

    def test_repr_names_the_mode(self):
        assert "mode='process'" in repr(
            ShardedExecutor(workers=2, mode="process")
        )

    def test_env_default_mode(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV, "process")
        assert ShardedExecutor(workers=2).mode == "process"
        monkeypatch.delenv(MODE_ENV)
        assert ShardedExecutor(workers=2).mode == "thread"


class TestProcessTelemetry:
    def test_span_dag_matches_thread_shape(self, stack, plan):
        tracer = Tracer()
        registry = MetricsRegistry()
        ex = ShardedExecutor(workers=2, shard_size=2, mode="process")
        out = ex.run(stack, plan, tracer=tracer, metrics=registry)
        _assert_identical(out, sfft_batch_fused(stack, plan))

        spans = tracer.spans
        root = [s for s in spans if s.name == "executor.run"]
        assert len(root) == 1 and root[0].track == EXECUTOR_TRACK
        assert root[0].attrs["mode"] == "process"

        shard_spans = [s for s in spans
                       if s.name.startswith("shard") and "." not in s.name]
        assert len(shard_spans) == 4
        assert sum(s.attrs["signals"] for s in shard_spans) == _S
        assert {s.track for s in shard_spans} <= {"worker0", "worker1"}
        for s in shard_spans:
            assert s.attrs["parent"] == "executor.run"
            assert s.attrs["queue_wait_s"] >= 0.0

        stage_spans = [s for s in spans
                       if s.name.startswith("shard") and "." in s.name]
        stages = {s.name.split(".", 1)[1] for s in stage_spans}
        assert stages == {"perm_filter", "bucket_fft", "cutoff",
                          "recovery", "estimation"}
        for s in stage_spans:
            assert s.depth == 1
            assert s.attrs["parent"] == s.name.split(".", 1)[0]

        snap = registry.snapshot()
        assert snap["sfft.executor.workers"]["value"] == 2
        assert snap["sfft.executor.shards"]["value"] == 4
        assert snap["sfft.executor.shm_bytes"]["value"] > 0

    def test_untrimmed_results_cross_the_boundary(self, stack, plan):
        # trim_to_k=False has no per-signal size bound, so results come
        # back pickled instead of through the shared output block.
        ex = ShardedExecutor(workers=2, shard_size=3, mode="process")
        _assert_identical(
            ex.run(stack, plan, trim_to_k=False),
            sfft_batch_fused(stack, plan, trim_to_k=False),
        )

    def test_strict_error_names_global_signal_index(self):
        # Same construction as the thread-mode test: pure noise defeats
        # k-sparse voting, and the failing row sits in the second shard.
        n = 1024
        small = cached_plan(n, _K)
        rng = np.random.default_rng(99)
        X = np.stack([
            make_sparse_signal(n, _K, seed=80 + t).time for t in range(2)
        ] + [rng.standard_normal(n) * 1e-12])
        ex = ShardedExecutor(workers=2, shard_size=2, mode="process")
        with pytest.raises(RecoveryError, match="signal 2"):
            ex.run(X, small, strict=True)


class TestWorkerCrash:
    def test_killed_worker_is_a_clean_error(self, stack, plan, monkeypatch):
        registry = MetricsRegistry()
        ex = ShardedExecutor(workers=2, shard_size=2, mode="process")
        monkeypatch.setenv("REPRO_EXECUTOR_KILL_SHARD", "1")
        with pytest.raises(ExecutorError, match="worker process died"):
            ex.run(stack, plan, metrics=registry)
        snap = registry.snapshot()
        assert snap["sfft.executor.worker_failures"]["value"] >= 1
        # Segments are unlinked before the error propagates (the autouse
        # fixture re-checks after teardown).
        assert not _shm_entries()

    def test_pool_recovers_after_crash(self, stack, plan, monkeypatch):
        ex = ShardedExecutor(workers=2, shard_size=2, mode="process")
        monkeypatch.setenv("REPRO_EXECUTOR_KILL_SHARD", "0")
        with pytest.raises(ExecutorError):
            ex.run(stack, plan)
        monkeypatch.delenv("REPRO_EXECUTOR_KILL_SHARD")
        # The broken pool was discarded; a fresh one serves the next run.
        _assert_identical(ex.run(stack, plan), sfft_batch_fused(stack, plan))

    def test_poisoned_cached_pool_is_replaced_transparently(self, stack,
                                                            plan):
        # Break the cached pool behind the executor's back (what an
        # OOM-killed idle worker, or a crash racing a previous run's
        # submit loop, leaves behind).  The next run must detect the
        # submit-time breakage, discard the poisoned pool, and retry on
        # a fresh one — not surface a raw BrokenProcessPool.
        import time

        from repro.core.executor import _process_pool

        ex = ShardedExecutor(workers=2, shard_size=2, mode="process")
        pool = _process_pool(2, ex.start_method)
        pool.submit(os.getpid).result()  # workers definitely up
        for proc in list(pool._processes.values()):
            proc.kill()
        deadline = time.monotonic() + 10.0
        while not pool._broken and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool._broken, "pool never noticed its killed workers"

        registry = MetricsRegistry()
        out = ex.run(stack, plan, metrics=registry)
        _assert_identical(out, sfft_batch_fused(stack, plan))
        snap = registry.snapshot()
        assert snap["sfft.executor.worker_failures"]["value"] >= 1


class TestStartMethodDeterminism:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_fork_and_forkserver_agree_on_seeded_comb(self, stack, plan):
        # Comb masks are Generator-seeded and built in the parent; both
        # start methods must yield the bit-identical serial-engine masks
        # and therefore bit-identical results.
        kwargs = dict(comb_width=_N >> 4, seed=123)
        serial = sfft_batch_fused(stack, plan, **kwargs)
        for start_method in ("fork", "forkserver"):
            ex = ShardedExecutor(
                workers=2, shard_size=2, mode="process",
                start_method=start_method,
            )
            _assert_identical(ex.run(stack, plan, **kwargs), serial)
