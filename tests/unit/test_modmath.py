"""Unit tests for modular arithmetic helpers."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.utils.modmath import (
    gcd,
    ilog2,
    is_power_of_two,
    mod_inverse,
    mod_mult_range,
    next_power_of_two,
    random_invertible,
    random_odd,
)


class TestGcd:
    def test_basic(self):
        assert gcd(12, 18) == 6

    def test_coprime(self):
        assert gcd(35, 64) == 1

    def test_zero(self):
        assert gcd(0, 7) == 7


class TestModInverse:
    def test_small(self):
        assert mod_inverse(3, 7) == 5

    def test_power_of_two_modulus(self):
        inv = mod_inverse(5, 16)
        assert (5 * inv) % 16 == 1

    def test_inverse_of_one(self):
        assert mod_inverse(1, 1024) == 1

    def test_negative_argument_reduced(self):
        inv = mod_inverse(-3, 16)
        assert (-3 * inv) % 16 == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            mod_inverse(4, 16)

    def test_bad_modulus_raises(self):
        with pytest.raises(ParameterError):
            mod_inverse(3, 0)

    @pytest.mark.parametrize("n", [8, 64, 1 << 20])
    def test_roundtrip_many(self, n):
        rng = np.random.default_rng(1)
        for _ in range(25):
            a = int(rng.integers(0, n // 2)) * 2 + 1
            assert (a * mod_inverse(a, n)) % n == 1


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1 << 30)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-8)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(1 << 27) == 27

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(ParameterError):
            ilog2(12)

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
        assert next_power_of_two(1025) == 2048


class TestRandomDraws:
    def test_random_odd_is_odd_and_in_range(self, rng):
        for _ in range(50):
            v = random_odd(256, rng)
            assert v % 2 == 1 and 0 < v < 256

    def test_random_invertible_power_of_two(self, rng):
        for _ in range(50):
            v = random_invertible(1024, rng)
            assert gcd(v, 1024) == 1

    def test_random_invertible_composite(self, rng):
        for _ in range(50):
            v = random_invertible(360, rng)
            assert gcd(v, 360) == 1

    def test_small_modulus_rejected(self, rng):
        with pytest.raises(ParameterError):
            random_odd(1, rng)
        with pytest.raises(ParameterError):
            random_invertible(1, rng)


class TestModMultRange:
    def test_matches_recurrence(self):
        n, start, step, count = 1000, 7, 33, 200
        expected = []
        v = start
        for _ in range(count):
            expected.append(v)
            v = (v + step) % n
        got = mod_mult_range(start, count, step, n)
        assert got.tolist() == expected

    def test_empty(self):
        assert mod_mult_range(0, 0, 3, 10).size == 0

    def test_negative_step_wraps(self):
        got = mod_mult_range(0, 4, -1, 10)
        assert got.tolist() == [0, 9, 8, 7]

    def test_bad_modulus(self):
        with pytest.raises(ParameterError):
            mod_mult_range(0, 4, 1, 0)

    def test_huge_values_no_overflow(self):
        # step * count would overflow int64 without the mod reduction path.
        n = (1 << 62) + 1
        got = mod_mult_range(5, 3, n - 1, n)
        assert got.tolist() == [5, 4, 3]
