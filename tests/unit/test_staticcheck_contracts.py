"""The contract grammar and the opt-in runtime enforcement mode.

The same ``@shape_contract`` declaration feeds two consumers; the static
side is covered in ``test_staticcheck_shapes.py``.  This file pins the
declaration layer (dim/spec parsing, registration, decoration-time
validation) and the dynamic side: with enforcement on, live arrays are
bound against the symbolic dims on every call, input violations defer to
the function's own validation error, and drift raises
:class:`~repro.errors.ContractError` — a :class:`ParameterError`
subclass, so existing ``pytest.raises(ParameterError)`` suites keep
passing under ``REPRO_CHECK_CONTRACTS=1``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.staticcheck import contracts as contracts_mod
from repro.analysis.staticcheck.contracts import (
    ANY_DIM,
    Dim,
    contract_for,
    enforcement_enabled,
    parse_dim,
    parse_shape_spec,
    set_enforcement,
    shape_contract,
)
from repro.errors import ContractError, ParameterError


@pytest.fixture(autouse=True)
def _restore_contract_state():
    """Isolate the registry and the enforcement flag per test."""
    saved_registry = dict(contracts_mod._REGISTRY)
    saved_enforce = enforcement_enabled()
    try:
        yield
    finally:
        contracts_mod._REGISTRY.clear()
        contracts_mod._REGISTRY.update(saved_registry)
        set_enforcement(saved_enforce)


class TestGrammar:
    def test_parse_dim_forms(self):
        assert parse_dim("n") == Dim(1, ("n",))
        assert parse_dim("4") == Dim(4)
        assert parse_dim("2*B") == Dim(2, ("B",))
        assert parse_dim("?") is ANY_DIM

    def test_dim_products_commute_structurally(self):
        assert parse_dim("rounds*B") == parse_dim("B*rounds")
        assert Dim(2, ("a", "b")) == Dim(2, ("b", "a"))

    def test_parse_dim_rejects_garbage(self):
        with pytest.raises(ParameterError):
            parse_dim("n+1")
        with pytest.raises(ParameterError):
            parse_dim("n * ")

    def test_parse_shape_spec_forms(self):
        spec = parse_shape_spec("(L, B):complex128")
        assert spec.dims == (Dim(1, ("L",)), Dim(1, ("B",)))
        assert spec.dtype == "complex128"
        assert parse_shape_spec("(n,)").dims == (Dim(1, ("n",)),)
        assert parse_shape_spec("*").dims is None
        assert parse_shape_spec("*:int64").dtype == "int64"
        assert parse_shape_spec("@self.shape").shape_path == "self.shape"

    def test_parse_shape_spec_rejects_malformed(self):
        for bad in ("(n", "n)", "(n,) int64", "*int64"):
            with pytest.raises(ParameterError):
                parse_shape_spec(bad)

    def test_contract_spec_requires_arrow_and_named_inputs(self):
        with pytest.raises(ParameterError):
            shape_contract("x:(n,)")
        with pytest.raises(ParameterError):
            shape_contract("(n,) -> (n,)")

    def test_decoration_rejects_unknown_parameter(self):
        with pytest.raises(ParameterError, match="unknown parameter"):
            @shape_contract("y:(n,) -> (n,)")
            def fn(x):
                return x

    def test_dtype_declared_twice_is_rejected(self):
        with pytest.raises(ParameterError, match="dtype twice"):
            shape_contract("x:(n,) -> (n,):int64", dtype="int64")

    def test_registration_and_lookup(self):
        @shape_contract("x:(n,) -> (n,)")
        def doubler(x):
            return 2 * x

        contract = contract_for(doubler)
        assert contract is not None
        assert contract.name == "doubler"
        assert contract.key.endswith(".doubler")
        assert contract.symbols() == frozenset({"n"})
        assert contracts_mod._REGISTRY[contract.key] is contract


class TestEnforcementSwitch:
    def test_disabled_wrapper_is_pass_through(self):
        set_enforcement(False)

        @shape_contract("x:(n,) -> (n, 2)")  # body violates this freely
        def identity(x):
            return x

        out = identity(np.zeros(4))
        assert out.shape == (4,)  # no check ran

    def test_set_enforcement_returns_previous_state(self):
        previous = set_enforcement(True)
        assert enforcement_enabled() is True
        assert set_enforcement(previous) is True


class TestRuntimeChecks:
    def setup_method(self):
        set_enforcement(True)

    def test_output_shape_violation_raises(self):
        @shape_contract("x:(n,) -> (n,)")
        def truncate(x):
            return x[:-1]

        with pytest.raises(ContractError, match="return value"):
            truncate(np.zeros(8))

    def test_contract_error_is_a_parameter_error(self):
        assert issubclass(ContractError, ParameterError)

    def test_symbol_solved_from_input_constrains_output(self):
        """``S`` binds from the argument, so the return check is exact."""
        @shape_contract("x:(S, n) -> (S,)")
        def rows(x):
            return np.zeros(x.shape[0] + 1)

        with pytest.raises(ContractError, match="axis 0"):
            rows(np.zeros((3, 8)))

    def test_product_dims_check_via_divisibility(self):
        @shape_contract("x:(S*L, B) -> (S*L, B)",
                        bind={"L": "L", "B": "B"})
        def fft_rows(x, L, B):
            return x

        fft_rows(np.zeros((6, 4)), L=3, B=4)  # S solves to 2
        with pytest.raises(ContractError, match="not a multiple"):
            fft_rows(np.zeros((7, 4)), L=3, B=4)

    def test_bound_dim_mismatch_raises(self):
        @shape_contract("x:(n,) -> (n,)", bind={"n": "plan.n"})
        def use_plan(x, plan):
            return x

        plan = SimpleNamespace(n=16)
        use_plan(np.zeros(16), plan)
        with pytest.raises(ContractError, match="axis 0 is 8"):
            use_plan(np.zeros(8), plan)

    def test_bind_paths_subscript_and_len(self):
        @shape_contract("x:(S, n) -> *",
                        bind={"n": "perms[0].n", "S": "len(items)"})
        def gather(x, perms, items):
            return x

        perms = [SimpleNamespace(n=8)]
        gather(np.zeros((2, 8)), perms, items=[0, 1])
        with pytest.raises(ContractError):
            gather(np.zeros((3, 8)), perms, items=[0, 1])

    def test_unresolvable_bind_path_degrades_to_unchecked(self):
        """A path the arguments cannot satisfy skips the pin, not the call."""
        @shape_contract("x:(n,) -> (n,)", bind={"n": "plan.missing"})
        def tolerant(x, plan):
            return x

        assert tolerant(np.zeros(4), SimpleNamespace()).shape == (4,)

    def test_input_violation_defers_to_own_validation(self):
        """The function's more specific error wins over the contract's."""
        @shape_contract("x:(n,) -> (n,)")
        def validating(x):
            if x.ndim != 1:
                raise ParameterError("custom: x must be 1-D")
            return x

        with pytest.raises(ParameterError, match="custom: x must be 1-D"):
            validating(np.zeros((2, 2)))

    def test_silently_accepted_bad_input_raises_contract_error(self):
        @shape_contract("x:(n,) -> *")
        def accepting(x):
            return x.sum()

        with pytest.raises(ContractError, match="argument 'x'"):
            accepting(np.zeros((2, 2)))

    def test_output_dtype_violation_raises(self):
        @shape_contract("x:(n,) -> (n,)", dtype="complex128")
        def drops_precision(x):
            return np.abs(x)

        with pytest.raises(ContractError, match="dtype"):
            drops_precision(np.zeros(4, dtype=np.complex128))

    def test_deferred_shape_and_dtype_paths(self):
        """``@path`` specs resolve against the live arguments (shm idiom)."""
        @shape_contract("spec:* -> @spec.shape", dtype="@spec.dtype")
        def materialize(spec, buf):
            return np.asarray(buf, dtype=spec.dtype).reshape(spec.shape)

        spec = SimpleNamespace(shape=(2, 3), dtype="<c16")
        out = materialize(spec, np.zeros(6))
        assert out.shape == (2, 3)

        @shape_contract("spec:* -> @spec.shape")
        def lies(spec):
            return np.zeros((4,))

        with pytest.raises(ContractError, match="@spec.shape"):
            lies(spec)

    def test_unknown_declared_dtype_is_a_parameter_error(self):
        @shape_contract("x:(n,) -> (n,)", dtype="not-a-dtype")
        def fn(x):
            return x

        with pytest.raises(ParameterError, match="unknown dtype"):
            fn(np.zeros(3))

    def test_none_arguments_are_skipped(self):
        @shape_contract("out:(n,) -> (n,)")
        def with_optional(x, out=None):
            return np.zeros_like(x)

        assert with_optional(np.zeros(4)).shape == (4,)

    def test_wrapper_preserves_identity(self):
        @shape_contract("x:(n,) -> (n,)")
        def documented(x):
            """Docstring survives wrapping."""
            return x

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__
