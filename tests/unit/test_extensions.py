"""Unit tests for the extension features: Comb pre-filter, transform
variants (inverse / real / batch), autotuning, additional device models."""

import numpy as np
import pytest

from repro import isfft, make_plan, rsfft, sfft, sfft_batch
from repro.core.comb import comb_approved_residues, comb_spectrum
from repro.core.recovery import recover_locations
from repro.core.permutation import random_permutation
from repro.cpu import CPU_DEVICES, SANDY_BRIDGE_E5_2640, XEON_PHI_5110P, PsFFT
from repro.cusim import GPU_DEVICES, KEPLER_K20X, KEPLER_K40, MAXWELL_M40
from repro.errors import ParameterError
from repro.gpu import CusFFT, OPTIMIZED
from repro.signals import make_sparse_signal
from repro.tuning import candidate_bucket_counts, tune_parameters


class TestCombSpectrum:
    def test_aliases_residue_classes(self):
        # A single tone at frequency f shows up in class f mod W.
        n, W, f = 1 << 12, 64, 777
        t = np.arange(n)
        x = np.exp(2j * np.pi * f * t / n)
        z = np.abs(comb_spectrum(x, W, tau=0))
        assert int(np.argmax(z)) == f % W

    def test_aliasing_sums_coefficients(self):
        # Two tones in the same class can cancel for specific tau...
        n, W = 1 << 10, 32
        t = np.arange(n)
        x = np.exp(2j * np.pi * 5 * t / n) + np.exp(2j * np.pi * (5 + W) * t / n)
        z0 = np.abs(comb_spectrum(x, W, tau=0))
        assert int(np.argmax(z0)) == 5

    def test_invalid_W(self):
        x = np.zeros(64, complex)
        with pytest.raises(ParameterError):
            comb_spectrum(x, 48, 0)   # not a power of two
        with pytest.raises(ParameterError):
            comb_spectrum(x, 128, 0)  # larger than n
        with pytest.raises(ParameterError):
            comb_spectrum(x, 32, 64)  # tau out of range


class TestCombApproval:
    def test_true_support_always_approved(self):
        for seed in range(5):
            sig = make_sparse_signal(1 << 14, 12, seed=seed)
            mask = comb_approved_residues(sig.time, 512, 12, seed=seed + 50)
            assert mask[sig.locations % 512].all()

    def test_most_classes_rejected(self):
        sig = make_sparse_signal(1 << 14, 12, seed=9)
        mask = comb_approved_residues(sig.time, 1024, 12, seed=10)
        assert mask.mean() < 0.25

    def test_sfft_with_comb_exact(self):
        sig = make_sparse_signal(1 << 14, 16, seed=11)
        res = sfft(sig.time, 16, seed=12, comb_width=512)
        assert set(res.locations.tolist()) == set(sig.locations.tolist())

    def test_residue_filter_blocks_unapproved(self):
        n, B = 256, 16
        rng = np.random.default_rng(13)
        perm = random_permutation(n, rng)
        # Forbid everything: no hits can survive.
        mask = np.zeros(8, dtype=bool)
        hits, _ = recover_locations(
            [np.arange(B)], [perm], B, 1, residue_filter=mask
        )
        assert hits.size == 0

    def test_bad_filter_shape(self):
        n, B = 256, 16
        perm = random_permutation(n, np.random.default_rng(1))
        with pytest.raises(ParameterError):
            recover_locations(
                [np.arange(B)], [perm], B, 1,
                residue_filter=np.zeros((2, 2), dtype=bool),
            )

    def test_vote_threshold_validated(self):
        sig = make_sparse_signal(1 << 10, 4, seed=1)
        with pytest.raises(ParameterError):
            comb_approved_residues(sig.time, 64, 4, loops=2, vote_threshold=3)


class TestInverseTransform:
    def test_isfft_finds_sparse_time_support(self):
        n, k = 1 << 12, 5
        rng = np.random.default_rng(2)
        locs = np.sort(rng.choice(n, k, replace=False))
        vals = rng.standard_normal(k) + 1j * rng.standard_normal(k)
        dense = np.zeros(n, complex)
        dense[locs] = vals
        y = np.fft.fft(dense)
        res = isfft(y, k, seed=3)
        assert set(res.locations.tolist()) == set(locs.tolist())
        for f, v in zip(locs, vals):
            assert abs(res.as_dict()[int(f)] - v) < 1e-6 * max(1.0, abs(v))

    def test_isfft_matches_numpy_ifft(self):
        n, k = 1 << 12, 3
        sig = make_sparse_signal(n, k, seed=4)
        y = np.fft.fft(sig.time)          # y's ifft == sig.time... trivially
        res = isfft(np.fft.fft(sig.dense_spectrum()), k, seed=5)
        ref = np.fft.ifft(np.fft.fft(sig.dense_spectrum()))
        for f in res.locations:
            assert abs(res.as_dict()[int(f)] - ref[f]) < 1e-6 * np.abs(ref).max()


class TestRealTransform:
    def test_symmetric_support_and_real_reconstruction(self):
        n = 1 << 12
        t = np.arange(n)
        x = 2.0 * np.cos(2 * np.pi * 300 * t / n + 1.0) + np.sin(
            2 * np.pi * 1000 * t / n
        )
        res = rsfft(x, 4, seed=6)
        mirrors = set(((-res.locations) % n).tolist())
        assert mirrors == set(res.locations.tolist())
        back = np.fft.ifft(res.to_dense())
        assert np.abs(back.imag).max() < 1e-9
        assert np.abs(back.real - x).max() < 1e-6 * np.abs(x).max()

    def test_rejects_complex_input(self):
        with pytest.raises(ParameterError):
            rsfft(np.exp(1j * np.arange(64)), 2)

    def test_dc_kept_real(self):
        n = 1 << 10
        x = 3.0 + np.cos(2 * np.pi * 17 * np.arange(n) / n)
        res = rsfft(x, 3, seed=7)
        d = res.as_dict()
        assert 0 in d and abs(d[0].imag) == 0.0


class TestBatchTransform:
    def test_batch_matches_individual(self):
        plan = make_plan(1 << 10, 4, seed=8)
        sigs = [make_sparse_signal(1 << 10, 4, seed=s) for s in (20, 21, 22)]
        outs = sfft_batch([s.time for s in sigs], plan=plan)
        for sig, out in zip(sigs, outs):
            ref = sfft(sig.time, plan=plan)
            assert (out.locations == ref.locations).all()

    def test_batch_2d_array_input(self):
        sigs = np.stack(
            [make_sparse_signal(512, 3, seed=s).time for s in (1, 2)]
        )
        outs = sfft_batch(sigs, 3, seed=9)
        assert len(outs) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            sfft_batch([np.zeros(64, complex), np.zeros(128, complex)], 2)

    def test_needs_k_or_plan(self):
        with pytest.raises(ParameterError):
            sfft_batch([np.zeros(64, complex)])


class TestTuning:
    def test_candidates_bracket_formula(self):
        cands = candidate_bucket_counts(1 << 20, 100)
        base = [c for c in cands]
        assert len(base) >= 2
        assert all(c & (c - 1) == 0 for c in base)

    def test_tuned_never_worse_than_formula(self):
        for logn in (20, 23, 26):
            n, k = 1 << logn, 1000
            kw = dict(profile="fast", select_count=k, bucket_constant=1.0)
            formula = CusFFT.create(
                n, k, config=OPTIMIZED, loops=6, **kw
            ).estimated_time()
            tuned = tune_parameters(n, k, loops=6, **kw)
            assert tuned.modeled_time_s <= formula + 1e-12

    def test_trials_sorted_best_first(self):
        res = tune_parameters(1 << 20, 100, profile="fast")
        times = [t for _, _, t in res.trials]
        assert times == sorted(times)
        assert res.modeled_time_s == times[0]

    def test_cpu_executor(self):
        res = tune_parameters(1 << 20, 100, executor="cpu", profile="fast")
        assert res.modeled_time_s > 0

    def test_bad_executor(self):
        with pytest.raises(ParameterError):
            tune_parameters(1 << 20, 100, executor="tpu")

    def test_tuned_params_functionally_valid(self):
        res = tune_parameters(1 << 14, 16, profile="fast")
        sig = make_sparse_signal(1 << 14, 16, seed=30)
        plan = make_plan(res.params.n, res.params.k, params=res.params, seed=31)
        out = sfft(sig.time, plan=plan)
        assert set(out.locations.tolist()) == set(sig.locations.tolist())


class TestAdditionalDevices:
    def test_rosters(self):
        assert KEPLER_K20X in GPU_DEVICES and KEPLER_K40 in GPU_DEVICES
        assert MAXWELL_M40 in GPU_DEVICES
        assert SANDY_BRIDGE_E5_2640 in CPU_DEVICES and XEON_PHI_5110P in CPU_DEVICES

    def test_k40_beats_k20x(self):
        k = 1000
        kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=k)
        t20 = CusFFT.create(1 << 26, k, device=KEPLER_K20X, **kw).estimated_time()
        t40 = CusFFT.create(1 << 26, k, device=KEPLER_K40, **kw).estimated_time()
        assert t40 < t20

    def test_phi_beats_sandy_bridge_on_gathers(self):
        k = 1000
        kw = dict(profile="fast", loops=6, bucket_constant=1.0, select_count=k)
        sb = PsFFT.create(1 << 26, k, threads=6, **kw).estimated_time()
        phi = PsFFT.create(
            1 << 26, k, threads=60, cpu=XEON_PHI_5110P, **kw
        ).estimated_time()
        assert phi < sb

    def test_cusfft_functional_on_any_device(self):
        sig = make_sparse_signal(1 << 12, 8, seed=40)
        for dev in GPU_DEVICES:
            t = CusFFT.create(1 << 12, 8, device=dev)
            run = t.execute(sig.time, seed=41)
            assert set(run.result.locations.tolist()) == set(
                sig.locations.tolist()
            )


class TestDispatch:
    def test_small_n_prefers_dense(self):
        from repro.dispatch import recommend_transform

        d = recommend_transform(1 << 16, 1000, profile="fast")
        assert d.gpu_winner == "dense"
        assert d.gpu_advantage < 1.0

    def test_large_n_prefers_sparse(self):
        from repro.dispatch import recommend_transform

        d = recommend_transform(
            1 << 26, 1000, profile="fast", loops=6,
            bucket_constant=1.0, select_count=1000,
        )
        assert d.gpu_winner == "sparse"
        assert d.cpu_winner == "sparse"
        assert d.gpu_advantage > 2.0

    def test_all_four_systems_priced(self):
        from repro.dispatch import recommend_transform

        d = recommend_transform(1 << 20, 100)
        assert set(d.times) == {"cufft", "cusfft", "fftw", "psfft"}
        assert all(t > 0 for t in d.times.values())

    def test_bad_k(self):
        from repro.dispatch import recommend_transform

        with pytest.raises(ParameterError):
            recommend_transform(1 << 16, 0)

    def test_auto_sfft_dense_route_correct(self):
        from repro.dispatch import auto_sfft

        sig = make_sparse_signal(1 << 12, 4, seed=70)
        result, decision = auto_sfft(sig.time, 4, seed=71)
        # Either route must return the true support.
        assert set(result.locations.tolist()) == set(sig.locations.tolist())
        assert decision.cpu_winner in ("dense", "sparse")

    def test_auto_sfft_sparse_route_correct(self):
        from repro.dispatch import auto_sfft

        # Large-ish n with small k: the sparse route wins on the CPU model.
        sig = make_sparse_signal(1 << 18, 16, seed=72)
        result, decision = auto_sfft(
            sig.time, 16, seed=73, profile="fast", loops=6,
        )
        assert set(result.locations.tolist()) == set(sig.locations.tolist())


class TestDispatchDenseRoute:
    def test_dense_route_taken_and_correct(self):
        # Small n with relatively large k: every model prefers the dense
        # transform, and the dense route must still return exact top-k.
        from repro.dispatch import auto_sfft, recommend_transform

        n, k = 1 << 12, 256
        decision = recommend_transform(n, k, profile="fast")
        assert decision.cpu_winner == "dense"

        sig = make_sparse_signal(n, k, seed=90)
        result, d2 = auto_sfft(sig.time, k, seed=91, profile="fast")
        assert d2.cpu_winner == "dense"
        assert set(result.locations.tolist()) == set(sig.locations.tolist())
        assert (result.votes == 0).all()  # dense route carries no votes

    def test_advantage_properties(self):
        from repro.dispatch import recommend_transform

        d = recommend_transform(1 << 26, 1000, profile="fast", loops=6,
                                bucket_constant=1.0, select_count=1000)
        assert d.gpu_advantage > 1.0
        assert d.cpu_advantage > 1.0
