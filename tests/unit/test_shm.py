"""Shared-memory layer: descriptors, bundle lifecycle, plan round-trip.

The contract under test is the one the process-pool executor leans on:
array *descriptors* (segment name, shape, dtype, offset) — never bytes —
cross the process boundary; ``SegmentBundle.close`` unlinks always and
idempotently (no ``/dev/shm`` entry can outlive a run); views default to
read-only so a cross-process write is an immediate error; and a
``PlanDescriptor`` materializes into a plan whose derived arrays are
bit-identical to the original's.
"""

import os

import numpy as np
import pytest

from repro.core import make_plan
from repro.core.shm import (
    AttachedSegment,
    SegmentBundle,
    SharedArraySpec,
    describe_plan,
    plan_fingerprint,
    plan_shared_arrays,
    worker_cache_clear,
    worker_lease,
)
from repro.core.workspace import PlanWorkspace
from repro.errors import ParameterError


def _shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-tmpfs host
        return []
    return [f for f in os.listdir("/dev/shm") if f.startswith("sfft")]


@pytest.fixture(autouse=True)
def no_leaks():
    before = _shm_entries()
    yield
    leaked = [f for f in _shm_entries() if f not in before]
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


class TestSegmentBundle:
    def test_round_trip_and_alignment(self):
        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": (np.linspace(0, 1, 33) + 2j).astype(np.complex128),
            "c": np.zeros((3, 5), dtype=np.int16),
        }
        with SegmentBundle.create(arrays, label="sfft-test") as bundle:
            assert bundle.name.startswith("sfft-test-")
            for key, arr in arrays.items():
                spec = bundle.specs[key]
                assert spec.segment == bundle.name
                assert spec.offset % 64 == 0
                assert spec.shape == arr.shape
                assert np.dtype(spec.dtype) == arr.dtype
                np.testing.assert_array_equal(bundle.view(key), arr)

    def test_views_are_read_only_by_default(self):
        with SegmentBundle.create({"x": np.arange(4)}) as bundle:
            view = bundle.view("x")
            with pytest.raises(ValueError):
                view[0] = 99
            writable = bundle.view("x", writeable=True)
            writable[0] = 99
            assert bundle.view("x")[0] == 99

    def test_close_is_idempotent_and_unlinks(self):
        bundle = SegmentBundle.create({"x": np.arange(4)})
        name = bundle.name
        assert name in _shm_entries()
        bundle.close()
        assert name not in _shm_entries()
        bundle.close()  # second close is a no-op, not an error
        with pytest.raises(ParameterError, match="closed"):
            bundle.view("x")

    def test_empty_bundle_rejected(self):
        with pytest.raises(ParameterError, match="at least one array"):
            SegmentBundle.create({})

    def test_repr_names_arrays_and_state(self):
        bundle = SegmentBundle.create({"x": np.arange(4)})
        assert "'x'" in repr(bundle)
        bundle.close()
        assert "closed" in repr(bundle)


class TestSpecsAndAttachment:
    def test_attached_view_is_zero_copy_identical(self):
        data = np.arange(100, dtype=np.complex128).reshape(10, 10)
        with SegmentBundle.create({"m": data}) as bundle:
            spec = bundle.specs["m"]
            with AttachedSegment(spec.segment) as att:
                view = att.view(spec)
                np.testing.assert_array_equal(view, data)
                assert not view.flags.writeable

    def test_attached_writes_reach_the_parent(self):
        with SegmentBundle.create({"out": np.zeros(8)}) as bundle:
            spec = bundle.specs["out"]
            with AttachedSegment(spec.segment) as att:
                att.view(spec, writeable=True)[:] = 7.0
            np.testing.assert_array_equal(bundle.view("out"), np.full(8, 7.0))

    def test_overrun_spec_is_rejected(self):
        with SegmentBundle.create({"x": np.arange(4, dtype=np.int64)}) as b:
            bad = SharedArraySpec(
                segment=b.name, shape=(1000,), dtype="<i8", offset=0
            )
            with AttachedSegment(b.name) as att:
                with pytest.raises(ParameterError, match="overruns"):
                    att.view(bad)

    def test_spec_nbytes(self):
        spec = SharedArraySpec(
            segment="s", shape=(3, 5), dtype="<c16", offset=64
        )
        assert spec.nbytes == 3 * 5 * 16


class TestPlanDescriptors:
    @pytest.fixture(scope="class")
    def plan(self):
        return make_plan(1024, 4, seed=17)

    def test_fingerprint_is_deterministic_and_binding_sensitive(self, plan):
        fp = plan_fingerprint(plan, None, 1)
        assert fp == plan_fingerprint(plan, None, 1)
        assert fp != plan_fingerprint(plan, "numpy", 1)
        assert fp != plan_fingerprint(plan, None, 2)
        other = make_plan(1024, 4, seed=18)
        assert fp != plan_fingerprint(other, None, 1)

    def test_worker_lease_materializes_identical_plan(self, plan):
        ws = PlanWorkspace(plan)
        arrays = plan_shared_arrays(plan, ws)
        with SegmentBundle.create(arrays, label="sfft-plan") as bundle:
            desc = describe_plan(
                plan, bundle.specs, fft_backend=None, fft_workers=1
            )
            try:
                lease = worker_lease(desc)
                assert lease.plan.params == plan.params
                for ours, theirs in zip(
                    plan.permutations, lease.plan.permutations
                ):
                    assert (ours.sigma, ours.tau) == (theirs.sigma,
                                                      theirs.tau)
                np.testing.assert_array_equal(
                    lease.plan.filt.time, plan.filt.time
                )
                np.testing.assert_array_equal(
                    lease.plan.filt.freq, plan.filt.freq
                )
                np.testing.assert_array_equal(
                    lease.workspace.taps_flat, ws.taps_flat
                )
                # Same descriptor -> same cached lease, no re-attach.
                assert worker_lease(desc) is lease
            finally:
                worker_cache_clear()

    def test_lease_survives_parent_unlink(self, plan):
        # POSIX keeps an unlinked segment alive for attached mappings:
        # the warm-worker cache outlives the parent's end-of-run close.
        ws = PlanWorkspace(plan)
        bundle = SegmentBundle.create(
            plan_shared_arrays(plan, ws), label="sfft-plan"
        )
        desc = describe_plan(
            plan, bundle.specs, fft_backend=None, fft_workers=1
        )
        try:
            lease = worker_lease(desc)
            bundle.close()  # name gone from /dev/shm...
            np.testing.assert_array_equal(  # ...but the mapping still reads
                lease.workspace.taps_flat, ws.taps_flat
            )
        finally:
            worker_cache_clear()
            bundle.close()
