"""Unit tests for the process-level LRU plan cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PlanCache, cached_plan, global_plan_cache, make_plan
from repro.core.plan_cache import DEFAULT_CAPACITY
from repro.errors import ParameterError
from repro.obs import global_registry

N, K = 1024, 4


class TestHitMiss:
    def test_first_call_misses_then_hits(self):
        cache = PlanCache()
        p1 = cache.get_or_make(N, K, seed=1)
        p2 = cache.get_or_make(N, K, seed=1)
        assert p1 is p2
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1,
            "capacity": DEFAULT_CAPACITY,
        }

    def test_counters_reach_metrics_registry(self):
        cache = PlanCache()
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=2)
        reg = global_registry()
        assert reg.counter("sfft.plan_cache.miss").value == 2
        assert reg.counter("sfft.plan_cache.hit").value == 1

    def test_cached_plan_equals_make_plan(self):
        cache = PlanCache()
        got = cache.get_or_make(N, K, seed=9, loops=6)
        want = make_plan(N, K, seed=9, loops=6)
        assert got.params == want.params
        assert got.permutations == want.permutations
        np.testing.assert_array_equal(got.filt.time, want.filt.time)


class TestKeying:
    def test_distinct_seeds_do_not_collide(self):
        cache = PlanCache()
        p1 = cache.get_or_make(N, K, seed=1)
        p2 = cache.get_or_make(N, K, seed=2)
        assert p1 is not p2
        assert p1.permutations != p2.permutations
        assert cache.stats()["misses"] == 2 and len(cache) == 2

    def test_distinct_overrides_do_not_collide(self):
        cache = PlanCache()
        p1 = cache.get_or_make(N, K, seed=1, loops=5)
        p2 = cache.get_or_make(N, K, seed=1, loops=7)
        assert p1.loops == 5 and p2.loops == 7
        assert len(cache) == 2

    def test_equivalent_spellings_share_one_entry(self):
        # The key is built from the *resolved* parameter set, so an
        # explicit override equal to the derived default is the same plan.
        cache = PlanCache()
        p1 = cache.get_or_make(N, K, seed=1)
        p2 = cache.get_or_make(N, K, seed=1, loops=p1.loops)
        assert p1 is p2
        assert cache.stats()["hits"] == 1

    def test_default_backend_is_part_of_the_key(self):
        # A plan's lazily built workspace caches backend-sized scratch; a
        # wisdom- or env-driven backend switch mid-process must never be
        # served a workspace planned under the previous backend.
        from repro.core.fft_backend import set_default_backend

        cache = PlanCache()
        try:
            set_default_backend("numpy")
            p1 = cache.get_or_make(N, K, seed=1)
            set_default_backend("scipy")
            p2 = cache.get_or_make(N, K, seed=1)
        finally:
            set_default_backend(None)
        assert p1 is not p2
        assert cache.stats()["misses"] == 2 and len(cache) == 2

    def test_generator_seed_bypasses_cache(self):
        cache = PlanCache()
        rng = np.random.default_rng(3)
        p1 = cache.get_or_make(N, K, seed=rng)
        p2 = cache.get_or_make(N, K, seed=rng)
        assert p1 is not p2
        assert len(cache) == 0
        assert cache.stats()["misses"] == 2
        assert global_registry().counter("sfft.plan_cache.miss").value == 2


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=2)
        cache.get_or_make(N, K, seed=1)   # refresh seed=1 -> MRU
        cache.get_or_make(N, K, seed=3)   # evicts seed=2 (LRU)
        assert len(cache) == 2
        cache.get_or_make(N, K, seed=1)   # still resident
        cache.get_or_make(N, K, seed=2)   # evicted -> rebuilt
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 4

    def test_eviction_counter_and_metric(self):
        cache = PlanCache(capacity=2)
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=2)
        assert cache.stats()["evictions"] == 0
        cache.get_or_make(N, K, seed=3)   # displaces seed=1
        cache.get_or_make(N, K, seed=4)   # displaces seed=2
        assert cache.stats()["evictions"] == 2
        reg = global_registry()
        assert reg.counter("sfft.plan_cache.evictions").value == 2

    def test_hit_rate_gauge_derived_from_traffic(self):
        cache = PlanCache()
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=1)
        gauge = global_registry().gauge("sfft.plan_cache.hit_rate")
        assert gauge.value == pytest.approx(2 / 3)

    def test_capacity_validated(self):
        with pytest.raises(ParameterError):
            PlanCache(capacity=0)

    def test_clear_resets_everything(self):
        cache = PlanCache()
        cache.get_or_make(N, K, seed=1)
        cache.get_or_make(N, K, seed=1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0
        assert cache.stats()["evictions"] == 0


class TestGlobalCache:
    def test_cached_plan_uses_the_global_cache(self):
        cache = global_plan_cache()
        cache.clear()
        try:
            p1 = cached_plan(N, K, seed=4)
            p2 = cached_plan(N, K, seed=4)
            assert p1 is p2
            assert cache.stats()["hits"] == 1
        finally:
            cache.clear()

    def test_sfft_convenience_form_reuses_plans(self, signal_small):
        from repro.core import sfft

        cache = global_plan_cache()
        cache.clear()
        try:
            r1 = sfft(signal_small.time, K, seed=5)
            r2 = sfft(signal_small.time, K, seed=5)
            assert cache.stats()["misses"] == 1
            assert cache.stats()["hits"] == 1
            np.testing.assert_array_equal(r1.locations, r2.locations)
            np.testing.assert_array_equal(r1.values, r2.values)
        finally:
            cache.clear()
