"""The shape/dtype contract engine: static certification and its guards.

Three layers of pinning:

* synthetic bodies — the abstract interpreter flags transposed returns,
  non-conserving reshapes and dtype drift, and stays silent on the
  equivalent correct code;
* the repo tip — ``check_contracts()`` returns **no** findings (every
  decorated pipeline contract is statically certified), while the seeded
  negative control keeps producing its violation so a checker that goes
  blind cannot go green;
* the driver's own guards — missing ``REQUIRED_CONTRACTS`` coverage and
  a negative control that stops firing both surface as errors.

Tests register synthetic contracts by *calling* the decorator (not with
``@`` syntax) under a registry-restoring fixture, so the process-global
registry other tests and ``python -m repro lint`` see is never polluted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.staticcheck import contracts as contracts_mod
from repro.analysis.staticcheck.contracts import (
    contract_for,
    registered_contracts,
    shape_contract,
)
from repro.analysis.staticcheck.findings import validate_lint_record
from repro.analysis.staticcheck.shapes import (
    REQUIRED_CONTRACTS,
    SHAPE_RULES,
    check_contract,
    check_contracts,
)


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Snapshot/restore the contract registry around every test."""
    saved = dict(contracts_mod._REGISTRY)
    try:
        yield
    finally:
        contracts_mod._REGISTRY.clear()
        contracts_mod._REGISTRY.update(saved)


def _check(spec: str, fn, **kwargs):
    """Register ``fn`` under ``spec`` and statically check its body."""
    decorated = shape_contract(spec, **kwargs)(fn)
    return check_contract(contract_for(decorated))


# -- synthetic bodies: plain module-level functions the tests decorate ----


def _transpose(x):
    return x.T


def _fold_ok(x):
    S, L, B = x.shape
    return x.reshape(S * L, B)


def _fold_swapped(x):
    S, L, B = x.shape
    return x.reshape(S * B, L)


def _astype_float(x):
    return x.astype(np.float64)


def _astype_complex(x):
    return x.astype(np.complex128)


def _clean_identity(x):
    return x


class TestSyntheticBodies:
    def test_transposed_return_is_flagged(self):
        findings = _check("x:(S, n) -> (S, n)", _transpose)
        rules = [f.rule for f in findings]
        assert rules.count("shape-contract-violation") == 2  # both axes
        assert "inferred (n, S) vs declared (S, n)" in findings[0].message

    def test_correct_transpose_contract_is_clean(self):
        assert _check("x:(S, n) -> (n, S)", _transpose) == []

    def test_reshape_conservation_is_proved(self):
        """``(S, L, B) -> (S*L, B)`` discharges via the product prover."""
        assert _check("x:(S, L, B) -> (S*L, B)", _fold_ok) == []

    def test_non_conserving_reshape_is_flagged(self):
        findings = _check("x:(S, L, B) -> (S*L, B)", _fold_swapped)
        assert any(f.rule == "shape-contract-violation" for f in findings)

    def test_dtype_drift_is_flagged(self):
        findings = _check("x:(n,) -> (n,)", _astype_float,
                          dtype="complex128")
        assert [f.rule for f in findings] == ["dtype-drift"]
        assert "float64" in findings[0].message

    def test_matching_astype_is_clean(self):
        assert _check("x:(n,) -> (n,)", _astype_complex,
                      dtype="complex128") == []

    def test_unconstrained_output_never_flags(self):
        assert _check("x:(S, n) -> *", _transpose) == []

    def test_findings_carry_shape_engine_and_validate(self):
        findings = _check("x:(S, n) -> (S, n)", _transpose)
        for finding in findings:
            assert finding.engine == "shape"
            assert validate_lint_record(finding.to_json()) == []

    def test_findings_anchor_into_this_file(self):
        findings = _check("x:(S, n) -> (S, n)", _transpose)
        assert all("test_staticcheck_shapes" in f.path for f in findings)
        assert all(f.line > 0 for f in findings)


class TestRepoTipCertified:
    """The acceptance pin: the decorated pipeline is statically certified."""

    def test_check_contracts_is_clean_on_repo_tip(self):
        assert check_contracts() == []

    def test_every_required_contract_is_registered(self):
        check_contracts()  # imports the contract modules
        keys = {c.key for c in registered_contracts()}
        missing = [key for key in REQUIRED_CONTRACTS if key not in keys]
        assert missing == []

    def test_negative_control_still_produces_violations(self):
        """The transposed-fold control must stay flagged forever.

        ``expect_violation`` swallows its findings in ``check_contracts``;
        this checks the *raw* findings exist, i.e. the checker can still
        see the seeded bug at all.
        """
        import repro.core.workspace  # noqa: F401 - populates the registry

        controls = [c for c in registered_contracts()
                    if "_selfcheck_transposed_fold" in c.key]
        assert len(controls) == 1
        control = controls[0]
        assert control.expect_violation
        raw = check_contract(control)
        assert any(f.rule == "shape-contract-violation" for f in raw)


class TestDriverGuards:
    def test_missing_required_contract_is_reported(self):
        check_contracts()  # ensure the registry is populated first
        key = "repro.core.batch.as_signal_stack"
        assert key in contracts_mod._REGISTRY
        del contracts_mod._REGISTRY[key]
        findings = check_contracts()
        hits = [f for f in findings if f.rule == "contract-missing"]
        assert len(hits) == 1
        assert key in hits[0].message
        assert hits[0].path == "src/repro/core/batch.py"

    def test_blind_negative_control_trips_the_selfcheck(self):
        """A control that stops firing means the checker went blind."""
        shape_contract("x:(n,) -> (n,)", expect_violation=True)(
            _clean_identity
        )
        findings = check_contracts()
        hits = [f for f in findings
                if f.rule == "shape-checker-selfcheck"]
        assert len(hits) == 1
        assert "_clean_identity" in hits[0].message
        assert "gone blind" in hits[0].message

    def test_shape_rules_carry_rationales(self):
        assert set(SHAPE_RULES) >= {
            "shape-contract-violation", "dtype-drift", "contract-missing",
            "shape-checker-selfcheck",
        }
        for rule in SHAPE_RULES.values():
            assert rule.severity in ("error", "warning")
            assert rule.rationale


class TestEngineIntegration:
    def test_collect_findings_can_skip_shapes(self):
        from repro.analysis.staticcheck.engine import collect_findings

        with_shapes = collect_findings(kernels=False, shapes=True)
        without = collect_findings(kernels=False, shapes=False)
        assert [f for f in without if f.engine == "shape"] == []
        # The tip is certified, so both are clean — but the shapes leg
        # must actually have run (registry populated by the call).
        assert with_shapes == []
        keys = {c.key for c in registered_contracts()}
        assert set(REQUIRED_CONTRACTS) <= keys
