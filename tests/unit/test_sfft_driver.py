"""End-to-end unit tests for the sFFT driver and result type."""

import numpy as np
import pytest

from repro.core import STEP_NAMES, SparseFFTResult, dense_fft, dense_topk, sfft
from repro.core.dense import reconstruct_time
from repro.errors import ParameterError, RecoveryError
from repro.signals import add_awgn, make_sparse_signal


def _ground_truth(sig):
    return {int(f): complex(v) for f, v in zip(sig.locations, sig.values)}


class TestSfftExactRecovery:
    @pytest.mark.parametrize(
        "n,k,seed", [(1024, 1, 0), (1024, 4, 1), (4096, 10, 2), (1 << 14, 32, 3)]
    )
    def test_exact_sparse_recovery(self, n, k, seed):
        sig = make_sparse_signal(n, k, seed=seed)
        res = sfft(sig.time, k, seed=seed + 1000)
        want = _ground_truth(sig)
        assert set(res.as_dict()) == set(want)
        for f, v in res.as_dict().items():
            assert abs(v - want[f]) < 1e-5 * abs(want[f])

    def test_matches_dense_fft_topk(self):
        sig = make_sparse_signal(4096, 8, seed=4)
        res = sfft(sig.time, 8, seed=5)
        locs, vals = dense_topk(dense_fft(sig.time), 8)
        assert (res.locations == locs).all()
        assert np.abs(res.values - vals).max() < 1e-5 * np.abs(vals).max()

    def test_real_input_accepted(self):
        # A real signal has a conjugate-symmetric spectrum: k tones appear
        # as 2k coefficients; ask for 2k.
        n = 4096
        t = np.arange(n)
        x = np.cos(2 * np.pi * 50 * t / n) + 0.5 * np.cos(2 * np.pi * 300 * t / n)
        res = sfft(x, 4, seed=6)
        assert set(res.locations.tolist()) == {50, 300, n - 300, n - 50}

    def test_noisy_recovery(self):
        sig = make_sparse_signal(1 << 14, 16, seed=7)
        noisy, _ = add_awgn(sig.time, 25.0, seed=8)
        res = sfft(noisy, 16, seed=9)
        assert set(res.locations.tolist()) == set(sig.locations.tolist())

    def test_binning_variants_agree(self, plan_small, signal_small):
        base = sfft(signal_small.time, plan=plan_small, binning="vectorized")
        alt = sfft(signal_small.time, plan=plan_small, binning="loop_partition")
        assert (base.locations == alt.locations).all()
        assert np.abs(base.values - alt.values).max() < 1e-9 * np.abs(
            base.values
        ).max()

    def test_threshold_cutoff_recovers(self, plan_medium, signal_medium):
        res = sfft(signal_medium.time, plan=plan_medium, cutoff_method="threshold")
        assert set(res.locations.tolist()) == set(signal_medium.locations.tolist())


class TestSfftDriverOptions:
    def test_plan_reuse_deterministic(self, plan_small, signal_small):
        a = sfft(signal_small.time, plan=plan_small)
        b = sfft(signal_small.time, plan=plan_small)
        assert (a.locations == b.locations).all()
        assert np.array_equal(a.values, b.values)

    def test_profile_records_all_steps(self, plan_small, signal_small):
        res = sfft(signal_small.time, plan=plan_small, profile=True)
        assert set(res.step_times) == set(STEP_NAMES)
        assert all(t >= 0 for t in res.step_times.values())

    def test_no_profile_no_times(self, plan_small, signal_small):
        assert sfft(signal_small.time, plan=plan_small).step_times is None

    def test_requires_k_or_plan(self, signal_small):
        with pytest.raises(ParameterError):
            sfft(signal_small.time)

    def test_unknown_binning(self, plan_small, signal_small):
        with pytest.raises(ParameterError):
            sfft(signal_small.time, plan=plan_small, binning="quantum")

    def test_signal_length_must_match_plan(self, plan_small):
        with pytest.raises(ParameterError):
            sfft(np.zeros(512, complex), plan=plan_small)

    def test_strict_raises_on_under_recovery(self):
        # Deterministic under-recovery: with select_count=1 the cutoff keeps
        # only the dominant coefficient's bucket every loop, so the other
        # three coefficients can never gather votes and strict mode trips.
        from repro.core import make_plan

        n = 1024
        vals = n * np.array([1.0, 0.5, 0.25, 0.125], dtype=complex)
        sig = make_sparse_signal(
            n, 4, locations=np.array([100, 300, 500, 700]), values=vals
        )
        plan = make_plan(n, 4, seed=0, select_count=1)
        with pytest.raises(RecoveryError):
            sfft(sig.time, plan=plan, strict=True)

    def test_trim_to_k(self, plan_small, signal_small):
        res = sfft(signal_small.time, plan=plan_small, trim_to_k=True)
        assert res.k_found <= plan_small.k

    def test_untrimmed_can_exceed_k(self, plan_small):
        sig = make_sparse_signal(1024, 4, seed=20)
        res = sfft(sig.time, plan=plan_small, trim_to_k=False)
        assert res.k_found >= 4


class TestSparseFFTResult:
    def test_to_dense_roundtrip(self):
        res = SparseFFTResult(
            n=16,
            locations=np.array([2, 5]),
            values=np.array([1 + 0j, 2j]),
            votes=np.array([4, 4]),
        )
        dense = res.to_dense()
        assert dense[2] == 1 and dense[5] == 2j and np.count_nonzero(dense) == 2

    def test_top_keeps_largest(self):
        res = SparseFFTResult(
            n=16,
            locations=np.array([1, 2, 3]),
            values=np.array([1.0, 10.0, 5.0], dtype=complex),
            votes=np.array([4, 4, 4]),
        )
        top = res.top(2)
        assert set(top.locations.tolist()) == {2, 3}

    def test_top_noop_when_k_large(self):
        res = SparseFFTResult(
            n=16,
            locations=np.array([1]),
            values=np.array([1.0 + 0j]),
            votes=np.array([4]),
        )
        assert res.top(5) is res

    def test_reconstruct_time_inverts(self):
        sig = make_sparse_signal(512, 3, seed=21)
        res = sfft(sig.time, 3, seed=22)
        back = reconstruct_time(res.locations, res.values, 512)
        assert np.abs(back - sig.time).max() < 1e-6 * np.abs(sig.time).max()

    def test_reconstruct_time_shape_check(self):
        with pytest.raises(ParameterError):
            reconstruct_time(np.array([1, 2]), np.array([1.0 + 0j]), 16)

    def test_dense_topk_validates(self):
        with pytest.raises(ParameterError):
            dense_topk(np.zeros(8), 0)
        with pytest.raises(ParameterError):
            dense_topk(np.zeros((2, 4)), 1)


class TestVerifyMode:
    def test_verify_passes_on_sparse_input(self):
        sig = make_sparse_signal(1 << 12, 6, seed=60)
        res = sfft(sig.time, 6, seed=61, verify=True)
        assert res.k_found == 6

    def test_verify_raises_on_non_sparse_input(self):
        rng = np.random.default_rng(62)
        dense_noise = rng.standard_normal(1 << 12)
        with pytest.raises(RecoveryError, match="verification failed"):
            sfft(dense_noise, 6, seed=63, verify=True)

    def test_verify_off_by_default(self):
        rng = np.random.default_rng(64)
        res = sfft(rng.standard_normal(1 << 12), 6, seed=65)
        assert res.k_found >= 0  # degrades gracefully, no exception
