"""Unit tests for the observability layer: tracer, metrics, exporters."""

import json
import threading

import pytest

from repro.errors import ParameterError
from repro.obs import (
    CPU_TRACK,
    MetricsRegistry,
    Tracer,
    global_registry,
    make_run_record,
    render_obs_summary,
    validate_run_record,
    write_jsonl,
)


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class TestTracer:
    def test_span_records_duration(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("work"):
            clock.tick(0.5)
        (sp,) = tr.spans
        assert sp.name == "work"
        assert sp.duration_s == pytest.approx(0.5)
        assert sp.track == CPU_TRACK

    def test_nesting_depth(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):
            with tr.span("inner"):
                clock.tick(0.1)
            clock.tick(0.1)
        by_name = {sp.name: sp for sp in tr.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # inner completes first; outer covers it
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s

    def test_span_records_on_exception(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert [sp.name for sp in tr.spans] == ["boom"]

    def test_durations_sums_repeats(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        for _ in range(3):
            with tr.span("step"):
                clock.tick(0.2)
        assert tr.durations()["step"] == pytest.approx(0.6)

    def test_add_span_rejects_negative(self):
        tr = Tracer()
        with pytest.raises(ParameterError):
            tr.add_span("bad", start_s=-1.0, duration_s=0.1)
        with pytest.raises(ParameterError):
            tr.add_span("bad", start_s=0.0, duration_s=-0.1)

    def test_thread_safety_smoke(self):
        tr = Tracer()

        def worker():
            for i in range(100):
                tr.add_span(f"t{i}", start_s=0.0, duration_s=0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans) == 400


class TestChromeExport:
    def test_empty_tracer_still_valid_json(self):
        doc = json.loads(Tracer().export_chrome_trace())
        assert isinstance(doc["traceEvents"], list)

    def test_events_nonnegative_and_typed(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("a"):
            clock.tick(0.25)
        tr.add_span("zero", start_s=0.5, duration_s=0.0, track="stream0")
        doc = json.loads(tr.export_chrome_trace())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == 2
        for e in events:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_one_tid_per_track_cpu_is_zero(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("cpu_step"):
            pass
        tr.add_span("k1", start_s=0.0, duration_s=1.0, track="stream0")
        tr.add_span("k2", start_s=0.0, duration_s=1.0, track="stream1")
        doc = json.loads(tr.export_chrome_trace())
        xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        tid = {e["name"]: e["tid"] for e in xs}
        assert tid["cpu_step"] == 0
        assert tid["k1"] != tid["k2"] and 0 not in (tid["k1"], tid["k2"])
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert names[tid["k1"]] == "stream0"

    def test_export_writes_file(self, tmp_path):
        tr = Tracer(clock=FakeClock())
        tr.add_span("x", start_s=0.0, duration_s=1.0)
        path = tmp_path / "trace.json"
        text = tr.export_chrome_trace(path)
        assert json.loads(path.read_text()) == json.loads(text)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.counter("c").value == 3

    def test_counter_rejects_negative(self):
        with pytest.raises(ParameterError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(7.5)
        assert reg.gauge("g").value == 7.5

    def test_histogram_snapshot_stats(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe_many([1, 2, 3])
        snap = reg.snapshot()["h"]
        assert snap["count"] == 3 and snap["min"] == 1 and snap["max"] == 3
        assert snap["mean"] == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe_many(range(1, 101))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1 and h.percentile(100) == 100
        assert h.percentile(99) == pytest.approx(99.01)

    def test_histogram_percentile_rejects_bad_input(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ParameterError):
            h.percentile(50)  # empty
        h.observe(1.0)
        for q in (-1, 101):
            with pytest.raises(ParameterError):
                h.percentile(q)

    def test_histogram_snapshot_includes_percentiles(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe_many(range(1, 101))
        snap = reg.snapshot()["h"]
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p90"] == pytest.approx(90.1)
        assert snap["p99"] == pytest.approx(99.01)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ParameterError):
            reg.gauge("x")

    def test_names_sorted_and_reset(self):
        reg = MetricsRegistry()
        reg.gauge("b.z").set(1)
        reg.counter("a.a")
        assert reg.names() == ["a.a", "b.z"]
        reg.reset()
        assert reg.names() == []

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()

    # Two identical probes: whichever runs second proves the autouse
    # fresh_global_registry fixture (tests/conftest.py) reset the
    # singleton the first one dirtied.
    def test_global_registry_isolated_probe_a(self):
        assert global_registry().names() == []
        global_registry().counter("tests.leak_probe").inc()

    def test_global_registry_isolated_probe_b(self):
        assert global_registry().names() == []
        global_registry().counter("tests.leak_probe").inc()

    def test_thread_safety_smoke(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(500):
                reg.counter("n").inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 2000


class TestRunRecords:
    def _record(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("step"):
            clock.tick(0.1)
        reg = MetricsRegistry()
        reg.gauge("sfft.recovery.hits").set(4)
        return make_run_record("demo", params={"n": 16}, tracer=tr,
                               registry=reg)

    def test_valid_record_passes(self):
        assert validate_run_record(self._record()) == []

    def test_record_is_json_serializable(self):
        json.dumps(self._record())

    def test_numpy_values_coerced(self):
        import numpy as np

        rec = make_run_record(
            "np", params={"n": np.int64(8), "err": np.float64(0.5)},
            rows=[[np.int32(1), np.complex128(1 + 2j)]],
        )
        text = json.dumps(rec)
        assert '"n":8' in text.replace(" ", "")

    def test_validate_catches_problems(self):
        assert validate_run_record([]) != []
        assert validate_run_record({"schema": "nope"}) != []
        bad = self._record()
        bad["spans"][0]["duration_s"] = -1
        assert any("duration_s" in p for p in validate_run_record(bad))

    def test_write_jsonl_appends(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_jsonl(path, self._record())
        write_jsonl(path, self._record())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(validate_run_record(json.loads(l)) == [] for l in lines)

    def test_write_jsonl_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_jsonl(tmp_path / "x.jsonl", {"schema": "wrong"})


class TestRenderObsSummary:
    def test_renders_spans_and_metrics(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("alpha"):
            clock.tick(1.0)
        reg = MetricsRegistry()
        reg.counter("sfft.collisions").inc(3)
        out = render_obs_summary(tr, reg)
        assert "alpha" in out and "sfft.collisions" in out

    def test_empty_inputs(self):
        assert "no observability data" in render_obs_summary(None, None)
