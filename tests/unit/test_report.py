"""Unit tests for attribution reports: self time, collapsed stacks,
sparklines, and the trajectory dashboard."""

import pytest

from repro.cusim import (
    KEPLER_K20X,
    GpuSimulation,
    KernelSpec,
    kernel_self_times,
)
from repro.obs import (
    Tracer,
    collapsed_stacks,
    make_baseline,
    render_attribution,
    render_trajectory_dashboard,
    self_time_rows,
    sparkline,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


def _nested_tracer():
    clock = FakeClock()
    tr = Tracer(clock=clock)
    with tr.span("pipeline"):
        with tr.span("perm_filter"):
            clock.tick(0.6)
        with tr.span("bucket_fft"):
            clock.tick(0.3)
        clock.tick(0.1)  # pipeline's own work
    return tr


class TestSelfTime:
    def test_parent_self_excludes_children(self):
        rows = {r["name"]: r for r in self_time_rows(_nested_tracer().spans)}
        assert rows["pipeline"]["total_s"] == pytest.approx(1.0)
        assert rows["pipeline"]["self_s"] == pytest.approx(0.1)
        assert rows["perm_filter"]["self_s"] == pytest.approx(0.6)

    def test_sorted_by_descending_self(self):
        rows = self_time_rows(_nested_tracer().spans)
        selfs = [r["self_s"] for r in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_accepts_record_span_dicts(self):
        spans = [
            {"name": "a", "category": "sfft", "track": "cpu",
             "start_s": 0.0, "duration_s": 1.0},
            {"name": "b", "category": "sfft", "track": "cpu",
             "start_s": 0.2, "duration_s": 0.5},
        ]
        rows = {r["name"]: r for r in self_time_rows(spans)}
        assert rows["a"]["self_s"] == pytest.approx(0.5)

    def test_tracks_do_not_nest_across(self):
        spans = [
            {"name": "cpu_work", "track": "cpu", "start_s": 0.0,
             "duration_s": 1.0},
            {"name": "kernel", "track": "stream0", "start_s": 0.1,
             "duration_s": 0.5},
        ]
        rows = {r["name"]: r for r in self_time_rows(spans)}
        # Same wall interval, different track: no containment.
        assert rows["cpu_work"]["self_s"] == pytest.approx(1.0)


class TestCollapsedStacks:
    def test_nested_paths_and_usec_values(self):
        lines = collapsed_stacks(_nested_tracer().spans)
        by_path = dict(l.rsplit(" ", 1) for l in lines)
        assert by_path["cpu;pipeline;perm_filter"] == "600000"
        assert by_path["cpu;pipeline;bucket_fft"] == "300000"
        assert by_path["cpu;pipeline"] == "100000"

    def test_zero_frames_dropped(self):
        tr = Tracer(clock=FakeClock())
        tr.add_span("instant", start_s=0.0, duration_s=0.0)
        assert collapsed_stacks(tr.spans) == []

    def test_timeline_report_merges_under_gpu_root(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        sim.launch(sim.stream(), KernelSpec("alpha", 56, 256,
                                            flops_per_thread=1e6))
        lines = collapsed_stacks(report=sim.run())
        assert len(lines) == 1
        assert lines[0].startswith("gpu;stream0;alpha ")

    def test_root_prefix(self):
        lines = collapsed_stacks(_nested_tracer().spans, root="run1")
        assert all(l.startswith("run1;cpu;") for l in lines)


class TestKernelSelfTimes:
    def test_streams_labelled_ordinally(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s1, s2 = sim.stream(), sim.stream()
        sim.launch(s1, KernelSpec("a", 56, 256, flops_per_thread=1e6))
        sim.launch(s2, KernelSpec("b", 56, 256, flops_per_thread=1e6))
        triples = kernel_self_times(sim.run())
        assert [(t, n) for t, n, _ in triples] == [
            ("stream0", "a"), ("stream1", "b")
        ]
        assert all(s > 0 for _, _, s in triples)

    def test_self_time_is_isolated_not_wall(self):
        # Two demand-1.0 kernels on one stream serialize; each record's
        # self time must equal its isolated estimate regardless.
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        t1 = sim.launch(s, KernelSpec("k", 56, 256, flops_per_thread=1e6))
        t2 = sim.launch(s, KernelSpec("k", 56, 256, flops_per_thread=1e6))
        ((_, _, self_s),) = kernel_self_times(sim.run())
        assert self_s == pytest.approx(t1.total_s + t2.total_s)

    def test_transfers_excluded(self):
        sim = GpuSimulation(KEPLER_K20X, host_launch_gap_s=0.0)
        s = sim.stream()
        sim.memcpy(s, 1 << 20, "h2d")
        assert kernel_self_times(sim.run()) == []


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert len(out) == 3 and len(set(out)) == 1

    def test_monotone_series_rises(self):
        out = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert out[0] == "▁" and out[-1] == "█"

    def test_width_keeps_most_recent(self):
        out = sparkline([0, 0, 0, 9, 9, 9], width=3)
        assert len(out) == 3 and len(set(out)) == 1


class TestRenderAttribution:
    def test_table_and_gauge_delta(self):
        from repro.obs import MetricsRegistry, make_run_record

        tr = _nested_tracer()
        reg = MetricsRegistry()
        reg.gauge("cusim.timeline.makespan_s").set(2.0)
        record = make_run_record("demo", params={"n": 4, "k": 1},
                                 tracer=tr, registry=reg)
        baseline = make_baseline([record])
        entry = baseline["entries"]["demo|n=4|k=1|default"]
        out = render_attribution(record["spans"], metrics=record["metrics"],
                                 baseline_entry=entry)
        assert "perm_filter" in out and "self" in out
        assert "cusim.timeline.makespan_s" in out
        assert "+0.0%" in out  # identical to its own baseline

    def test_no_spans(self):
        assert "no spans" in render_attribution([])


class TestTrajectoryDashboard:
    def _trajectory(self, values):
        return {
            "schema": "repro.trajectory/1",
            "points": [
                {"key": "fig5a|n=None|k=None|default", "experiment": "fig5a",
                 "metrics": {"span.fig5a.total_s": v}}
                for v in values
            ],
        }

    def test_sparkline_per_key(self):
        out = render_trajectory_dashboard(self._trajectory([1.0, 2.0, 4.0]))
        assert "fig5a" in out and "▁" in out and "█" in out

    def test_empty(self):
        assert "empty" in render_trajectory_dashboard({"points": []})

    def test_baseline_delta_column(self):
        traj = self._trajectory([1.0, 1.0, 2.0])
        baseline = {
            "schema": "repro.baseline/1",
            "entries": {
                "fig5a|n=None|k=None|default": {
                    "metrics": {"span.fig5a.total_s": {
                        "class": "wall", "median": 1.0, "iqr": 0.0,
                        "count": 2}}
                }
            },
        }
        out = render_trajectory_dashboard(traj, baseline=baseline)
        assert "+100.0%" in out
