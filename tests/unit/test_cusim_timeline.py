"""Unit tests for streams, events, the fluid scheduler, Thrust primitives,
and the profiler."""

import numpy as np
import pytest

from repro.cusim import (
    KEPLER_K20X,
    GpuSimulation,
    KernelSpec,
    OpKind,
    inclusive_scan,
    reduce_sum,
    render_summary,
    sort_by_key,
    sort_passes,
    summarize,
)
from repro.errors import ParameterError, StreamError

DEV = KEPLER_K20X


def _sim() -> GpuSimulation:
    """Scheduler with the host launch-issue gap disabled, so the fluid
    overlap math is tested in isolation (the gap has its own test)."""
    return GpuSimulation(DEV, host_launch_gap_s=0.0)


def _half_kernel(name="half"):
    # 56 blocks x 256 threads = half the K20x's resident capacity.
    return KernelSpec(name, grid_blocks=56, threads_per_block=256,
                      flops_per_thread=1e5)


def _full_kernel(name="full"):
    return KernelSpec(name, grid_blocks=4096, threads_per_block=256,
                      flops_per_thread=1e4)


class TestStreamSemantics:
    def test_in_stream_order_preserved(self):
        sim = _sim()
        s = sim.stream()
        sim.launch(s, _half_kernel("a"))
        sim.launch(s, _half_kernel("b"))
        rep = sim.run()
        recs = {r.name: r for r in rep.records}
        assert recs["b"].start_s >= recs["a"].end_s - 1e-12

    def test_cross_stream_event_ordering(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        sim.launch(s1, _half_kernel("a"))
        ev = s1.record_event()
        sim.launch(s2, _half_kernel("b"), after=(ev,))
        rep = sim.run()
        recs = {r.name: r for r in rep.records}
        assert recs["b"].start_s >= recs["a"].end_s - 1e-12

    def test_event_on_empty_stream_rejected(self):
        sim = _sim()
        s = sim.stream()
        with pytest.raises(StreamError):
            s.record_event()

    def test_memcpy_direction_validated(self):
        sim = _sim()
        s = sim.stream()
        with pytest.raises(StreamError):
            sim.memcpy(s, 100, "sideways")

    def test_memcpy_duration(self):
        sim = _sim()
        s = sim.stream()
        dur = sim.memcpy(s, 6_000_000_000, "h2d")
        assert dur == pytest.approx(1.0, rel=0.01)


class TestFluidScheduler:
    def test_two_half_kernels_fully_overlap(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        t = sim.launch(s1, _half_kernel("a"))
        sim.launch(s2, _half_kernel("b"))
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(t.total_s, rel=0.01)
        assert rep.max_concurrency() == 2

    def test_two_full_kernels_serialize_in_time(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        t = sim.launch(s1, _full_kernel("a"))
        sim.launch(s2, _full_kernel("b"))
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(2 * t.total_s, rel=0.01)

    def test_four_quarter_kernels_overlap(self):
        sim = _sim()
        spec = KernelSpec("q", grid_blocks=28, threads_per_block=256,
                          flops_per_thread=1e5)
        t = None
        for _ in range(4):
            t = sim.launch(sim.stream(), spec)
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(t.total_s, rel=0.01)

    def test_transfer_overlaps_kernel(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        kt = sim.launch(s1, _full_kernel())
        xt = sim.memcpy(s2, 120_000_000, "h2d")
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(max(kt.total_s, xt), rel=0.01)

    def test_h2d_and_d2h_use_separate_engines(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        a = sim.memcpy(s1, 60_000_000, "h2d")
        b = sim.memcpy(s2, 60_000_000, "d2h")
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(max(a, b), rel=0.01)

    def test_same_direction_transfers_share_engine(self):
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        a = sim.memcpy(s1, 60_000_000, "h2d")
        sim.memcpy(s2, 60_000_000, "h2d")
        rep = sim.run()
        assert rep.makespan_s == pytest.approx(2 * a, rel=0.02)

    def test_concurrent_kernel_limit_enforced(self):
        sim = _sim()
        tiny = KernelSpec("t", grid_blocks=1, threads_per_block=32,
                          flops_per_thread=1e4)
        for _ in range(40):
            sim.launch(sim.stream(), tiny)
        rep = sim.run()
        kernel_peaks = rep.max_concurrency()
        assert kernel_peaks <= DEV.max_concurrent_kernels

    def test_host_work_serializes_on_stream(self):
        sim = _sim()
        s = sim.stream()
        sim.host_work(s, "prep", 1e-3)
        sim.launch(s, _half_kernel("k"))
        rep = sim.run()
        recs = {r.name: r for r in rep.records}
        assert recs["k"].start_s >= 1e-3 - 1e-9

    def test_empty_simulation(self):
        rep = _sim().run()
        assert rep.makespan_s == 0.0 and rep.records == []

    def test_host_launch_gap_serializes_issue(self):
        # With the gap on, N tiny overlapping kernels cannot start faster
        # than the CPU can issue them.
        sim = GpuSimulation(DEV, host_launch_gap_s=4e-6)
        tiny = KernelSpec("t", grid_blocks=1, threads_per_block=32,
                          flops_per_thread=100)
        for _ in range(10):
            sim.launch(sim.stream(), tiny)
        rep = sim.run()
        starts = sorted(r.start_s for r in rep.records)
        for i, t0 in enumerate(starts):
            assert t0 >= (i + 1) * 4e-6 - 1e-9

    def test_launch_gap_default_on(self):
        assert GpuSimulation(DEV).host_launch_gap_s > 0

    def test_deadlock_detected(self):
        # Op waits on an event recorded after a *later* op in its own stream.
        sim = _sim()
        s1, s2 = sim.stream(), sim.stream()
        sim.launch(s2, _half_kernel("later"))
        ev = s2.record_event()
        # Manually create a cycle: s2's head op waits on s1's event, while
        # s1's op waits on ev (recorded after s2's op).
        sim.launch(s1, _half_kernel("first"), after=(ev,))
        ev1 = s1.record_event()
        s2.ops[0].after = (ev1,)
        with pytest.raises(StreamError):
            sim.run()


class TestThrust:
    def test_sort_passes(self):
        assert sort_passes(64) == 16
        assert sort_passes(32) == 8
        with pytest.raises(ParameterError):
            sort_passes(0)

    def test_sort_by_key_descending(self):
        (k, v), specs = sort_by_key(
            np.array([1.0, 3.0, 2.0]), np.array([10, 30, 20])
        )
        assert k.tolist() == [3.0, 2.0, 1.0]
        assert v.tolist() == [30, 20, 10]
        assert len(specs) == 2 * sort_passes(64)

    def test_sort_by_key_ascending(self):
        (k, _), _ = sort_by_key(
            np.array([1.0, 3.0, 2.0]), np.arange(3), descending=False
        )
        assert k.tolist() == [1.0, 2.0, 3.0]

    def test_sort_shape_mismatch(self):
        with pytest.raises(ParameterError):
            sort_by_key(np.zeros(3), np.zeros(4))

    def test_reduce_sum(self):
        total, specs = reduce_sum(np.arange(10.0))
        assert total == pytest.approx(45.0)
        assert specs[0].name == "thrust_reduce"

    def test_inclusive_scan(self):
        out, specs = inclusive_scan(np.array([1, 2, 3]))
        assert out.tolist() == [1, 3, 6]
        assert len(specs) == 2


class TestProfiler:
    def _report(self):
        sim = _sim()
        s = sim.stream()
        sim.launch(s, _half_kernel("alpha"))
        sim.launch(s, _half_kernel("alpha"))
        sim.launch(s, _full_kernel("beta"))
        sim.memcpy(s, 1000, "d2h")
        return sim.run()

    def test_summarize_groups_by_name(self):
        summary = summarize(self._report())
        names = {s.name: s for s in summary}
        assert names["alpha"].calls == 2
        assert names["beta"].calls == 1
        assert abs(sum(s.share for s in summary) - 1.0) < 1e-9

    def test_summary_sorted_by_total(self):
        summary = summarize(self._report())
        totals = [s.total_s for s in summary]
        assert totals == sorted(totals, reverse=True)

    def test_render_contains_kernels_and_makespan(self):
        text = render_summary(self._report())
        assert "alpha" in text and "beta" in text
        assert "makespan" in text
