"""Unit tests for device memory accounting, ASCII charts, and the off-grid
workload."""

import numpy as np
import pytest

from repro.cusim import DeviceMemoryPool, KEPLER_K20X
from repro.errors import DeviceMemoryError, ParameterError
from repro.gpu import CusFFT
from repro.signals import make_offgrid_tones
from repro.utils.asciiplot import line_chart


class TestDeviceMemoryPool:
    def test_alloc_and_release(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        a = pool.alloc("buf", 1 << 30)
        assert pool.used == 1 << 30
        assert a.nbytes == 1 << 30
        pool.release("buf")
        assert pool.used == 0

    def test_capacity_reserves_runtime(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        assert pool.capacity < KEPLER_K20X.global_mem_bytes

    def test_oom_raises(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        with pytest.raises(DeviceMemoryError):
            pool.alloc("huge", 7 * 1024**3)

    def test_oom_message_names_allocation(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        with pytest.raises(DeviceMemoryError, match="huge"):
            pool.alloc("huge", 7 * 1024**3)

    def test_duplicate_name_rejected(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        pool.alloc("a", 100)
        with pytest.raises(ParameterError):
            pool.alloc("a", 100)

    def test_release_unknown(self):
        with pytest.raises(ParameterError):
            DeviceMemoryPool(KEPLER_K20X).release("ghost")

    def test_non_positive_size(self):
        with pytest.raises(ParameterError):
            DeviceMemoryPool(KEPLER_K20X).alloc("z", 0)

    def test_summary(self):
        pool = DeviceMemoryPool(KEPLER_K20X)
        pool.alloc("a", 10)
        pool.alloc("b", 20)
        assert pool.summary() == {"a": 10, "b": 20}


class TestCusfftFootprint:
    def test_paper_max_size_fits(self):
        pool = CusFFT.create(1 << 27, 1000, profile="fast").device_footprint()
        assert pool.free > 0
        assert "signal" in pool.summary()

    def test_2_29_does_not_fit_k20x(self):
        # The physical reason the paper's sweep stops at 2^27.
        with pytest.raises(DeviceMemoryError):
            CusFFT.create(1 << 29, 1000, profile="fast").device_footprint()

    def test_execute_checks_budget(self):
        t = CusFFT.create(1 << 29, 1000, profile="fast")
        with pytest.raises(DeviceMemoryError):
            t.execute(np.zeros(1 << 29, dtype=np.complex64))  # never reached


class TestLineChart:
    X = [1 << p for p in range(10, 15)]

    def test_contains_markers_and_legend(self):
        chart = line_chart(self.X, {"a": [1, 2, 4, 8, 16], "b": [16, 8, 4, 2, 1]})
        assert "legend: o=a, x=b" in chart
        assert "o" in chart and "x" in chart

    def test_monotone_series_monotone_rows(self):
        chart = line_chart(
            self.X, {"up": [1, 2, 4, 8, 16]}, width=30, height=10
        )
        rows = [i for i, line in enumerate(chart.splitlines()) if "o" in line]
        assert rows == sorted(rows)  # marker descends the canvas rightwards

    def test_linear_axes(self):
        chart = line_chart(
            [0, 1, 2], {"a": [0.0, 1.0, 2.0]}, logx=False, logy=False
        )
        assert "legend" in chart

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            line_chart([1, 2], {"a": [0.0, 1.0]})

    def test_mismatched_lengths(self):
        with pytest.raises(ParameterError):
            line_chart([1, 2], {"a": [1.0]})

    def test_requires_two_points(self):
        with pytest.raises(ParameterError):
            line_chart([1], {"a": [1.0]})

    def test_title_rendered(self):
        chart = line_chart([1, 2], {"a": [1.0, 2.0]}, title="T")
        assert chart.splitlines()[0] == "T"

    def test_experiment_series_plot(self):
        from repro.experiments import run_experiment

        res = run_experiment("fig5c", sizes=[1 << 18, 1 << 20, 1 << 22])
        assert res.series is not None
        out = res.render(plot=True)
        assert "legend" in out


class TestOffgridWorkload:
    def test_zero_offset_is_exactly_sparse(self):
        x, freqs = make_offgrid_tones(1 << 12, 4, 0.0, seed=1)
        spec = np.abs(np.fft.fft(x))
        on_grid = spec[freqs.astype(int)]
        off_grid = np.delete(spec, freqs.astype(int))
        assert on_grid.min() > 1e6 * off_grid.max()

    def test_half_bin_offset_leaks(self):
        x, freqs = make_offgrid_tones(1 << 12, 4, 0.5, seed=2)
        spec = np.abs(np.fft.fft(x))
        nearest = spec[np.round(freqs).astype(int) % (1 << 12)]
        # The nearest bin holds only ~2/pi of the tone amplitude.
        assert nearest.max() < 0.75 * (1 << 12)

    def test_frequencies_carry_offset(self):
        _, freqs = make_offgrid_tones(1 << 12, 4, 0.3, seed=3)
        assert np.allclose(freqs % 1, 0.3)

    def test_offset_range_validated(self):
        with pytest.raises(ParameterError):
            make_offgrid_tones(1 << 12, 4, 1.0)

    def test_ext_offgrid_degrades_gracefully(self):
        from repro.experiments import run_experiment

        res = run_experiment(
            "ext-offgrid", n=1 << 14, k=8, offsets=(0.0, 0.5), trials=1
        )
        recall_on = float(res.rows[0][1])
        energy_on = float(res.rows[0][2])
        energy_half = float(res.rows[1][2])
        assert recall_on >= 0.8
        assert energy_on > 0.95
        assert energy_half < energy_on
