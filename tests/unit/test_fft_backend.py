"""Unit tests: the FFT backend registry and its resolution rules.

The registry is the vendor seam every dense FFT goes through, so its
failure modes are contractual: explicit unknown names must raise, ambient
misconfiguration (env var, missing optional dependency) must fall back to
numpy with a logged warning, and resolution order must be explicit name >
process default > environment > numpy.
"""

import logging

import numpy as np
import pytest

from repro.core.fft_backend import (
    ENV_VAR,
    FftBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    registered_backends,
    set_default_backend,
)
from repro.errors import ParameterError


@pytest.fixture(autouse=True)
def clean_registry_state(monkeypatch):
    """Isolate default-backend and env-var state; drop test registrations."""
    import repro.core.fft_backend as mod

    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_backend(None)
    before = set(registered_backends())
    yield
    set_default_backend(None)
    with mod._lock:
        for name in set(mod._factories) - before:
            mod._factories.pop(name, None)
            mod._instances.pop(name, None)


def test_numpy_always_registered_and_default():
    assert "numpy" in registered_backends()
    assert "numpy" in available_backends()
    assert default_backend_name() == "numpy"
    assert get_backend().name == "numpy"


def test_builtin_backends_registered():
    names = registered_backends()
    assert {"numpy", "scipy", "pyfftw"} <= set(names)
    assert names == sorted(names)


def test_unknown_explicit_name_raises():
    with pytest.raises(ParameterError, match="unknown FFT backend"):
        get_backend("no-such-backend")
    with pytest.raises(ParameterError, match="unknown FFT backend"):
        set_default_backend("no-such-backend")


def test_unknown_env_var_falls_back_with_warning(monkeypatch, caplog):
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    with caplog.at_level(logging.WARNING, logger="repro.core.fft_backend"):
        backend = get_backend()
    assert backend.name == "numpy"
    assert any("not a registered FFT backend" in r.message
               for r in caplog.records)


def test_missing_optional_dep_falls_back_with_warning(caplog):
    def broken_factory():
        raise ImportError("synthetic missing dependency")

    register_backend("broken-dep", broken_factory)
    assert "broken-dep" in registered_backends()
    assert "broken-dep" not in available_backends()
    with caplog.at_level(logging.WARNING, logger="repro.core.fft_backend"):
        backend = get_backend("broken-dep")
    assert backend.name == "numpy"
    assert any("falling back to numpy" in r.message for r in caplog.records)


def test_resolution_order_explicit_beats_default_beats_env(monkeypatch):
    class Tagged(FftBackend):
        def __init__(self, tag):
            self.name = tag

        def fft(self, a, *, axis=-1, workers=1):
            return np.fft.fft(a, axis=axis)

    register_backend("via-env", lambda: Tagged("via-env"))
    register_backend("via-default", lambda: Tagged("via-default"))
    register_backend("via-explicit", lambda: Tagged("via-explicit"))

    monkeypatch.setenv(ENV_VAR, "via-env")
    assert get_backend().name == "via-env"

    assert set_default_backend("via-default") == "via-default"
    assert get_backend().name == "via-default"

    assert get_backend("via-explicit").name == "via-explicit"

    set_default_backend(None)
    assert get_backend().name == "via-env"


def test_register_duplicate_requires_replace():
    register_backend("dup", lambda: _tagged("dup-one"))
    with pytest.raises(ParameterError, match="already registered"):
        register_backend("dup", lambda: _tagged("dup-two"))
    register_backend("dup", lambda: _tagged("dup-two"), replace=True)
    assert get_backend("dup").name == "dup-two"


def test_register_rejects_bad_names():
    with pytest.raises(ParameterError):
        register_backend("", lambda: _tagged("x"))
    with pytest.raises(ParameterError):
        register_backend(None, lambda: _tagged("x"))


def test_available_backends_agree_with_numpy(rng):
    """Every importable backend computes the same DFT (pocketfft twins
    are bit-identical; all must agree to float tolerance)."""
    a = (rng.standard_normal((4, 64)) + 1j * rng.standard_normal((4, 64)))
    want = np.fft.fft(a, axis=-1)
    for name in available_backends():
        got = get_backend(name).fft(a, axis=-1, workers=2)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12,
                                   err_msg=f"backend {name} diverged")


def test_scipy_backend_bit_identical_when_available(rng):
    if "scipy" not in available_backends():
        pytest.skip("scipy not installed")
    a = (rng.standard_normal((8, 128))
         + 1j * rng.standard_normal((8, 128)))
    np.testing.assert_array_equal(
        get_backend("scipy").fft(a), np.fft.fft(a, axis=-1)
    )
    np.testing.assert_array_equal(
        get_backend("scipy").fft(a, workers=2), np.fft.fft(a, axis=-1)
    )


def test_set_default_backend_reports_resolved_name():
    def broken_factory():
        raise ImportError("synthetic missing dependency")

    register_backend("broken-resolved", broken_factory)
    # The *requested* default is broken, so the resolved name is numpy —
    # exactly what the CLI echoes in the run record.
    assert set_default_backend("broken-resolved") == "numpy"


def _tagged(tag):
    class Tagged(FftBackend):
        name = tag

        def fft(self, a, *, axis=-1, workers=1):
            return np.fft.fft(a, axis=axis)

    return Tagged()
