"""Unit tests for sFFT parameter derivation and plan construction."""

import numpy as np
import pytest

from repro.core import SfftParameters, derive_parameters, make_plan
from repro.errors import ParameterError


class TestDeriveParameters:
    def test_defaults_sane(self):
        p = derive_parameters(1 << 20, 50)
        assert p.n == 1 << 20 and p.k == 50
        assert p.B % 2 == 0 and (1 << 20) % p.B == 0
        assert p.B >= 4 * 50 // 2  # at least ~2k buckets
        assert p.vote_threshold > p.loops // 2

    def test_bucket_count_scales_with_sqrt_nk(self):
        small = derive_parameters(1 << 16, 10).B
        bigger_n = derive_parameters(1 << 22, 10).B
        bigger_k = derive_parameters(1 << 16, 640).B
        assert bigger_n > small
        assert bigger_k > small

    def test_explicit_overrides(self):
        p = derive_parameters(1 << 12, 8, B=256, loops=5, vote_threshold=3)
        assert (p.B, p.loops, p.vote_threshold) == (256, 5, 3)

    def test_select_count_default_2k(self):
        p = derive_parameters(1 << 14, 16)
        assert p.select_count == 32

    def test_n_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            derive_parameters(1000, 10)

    def test_k_must_be_less_than_n(self):
        with pytest.raises(ParameterError):
            derive_parameters(64, 64)

    def test_bad_B_override(self):
        with pytest.raises(ParameterError):
            derive_parameters(1 << 12, 8, B=3)  # not a power of two
        with pytest.raises(ParameterError):
            derive_parameters(1 << 12, 8, B=1 << 12)  # > n/2

    def test_bad_vote_threshold(self):
        with pytest.raises(ParameterError):
            derive_parameters(1 << 12, 8, loops=4, vote_threshold=5)

    def test_n_div_B(self):
        p = derive_parameters(1 << 12, 8, B=256)
        assert p.n_div_B == (1 << 12) // 256

    def test_describe_mentions_shape(self):
        text = derive_parameters(1 << 12, 8).describe()
        assert "n=2^12" in text and "k=8" in text

    def test_frozen(self):
        p = derive_parameters(1 << 12, 8)
        with pytest.raises(AttributeError):
            p.B = 128

    def test_direct_construction_validates(self):
        with pytest.raises(ParameterError):
            SfftParameters(
                n=1024, k=4, B=512, loops=4, vote_threshold=3,
                select_count=1024, window="gaussian", tolerance=1e-8,
                lobefrac=0.001,
            )


class TestPlan:
    def test_plan_filter_padded_to_B(self, plan_small):
        assert plan_small.filt.width % plan_small.B == 0

    def test_plan_has_loop_permutations(self, plan_small):
        assert len(plan_small.permutations) == plan_small.loops
        sigmas = {p.sigma for p in plan_small.permutations}
        assert len(sigmas) > 1  # overwhelmingly likely with distinct draws

    def test_plan_deterministic_by_seed(self):
        a = make_plan(1 << 12, 8, seed=5)
        b = make_plan(1 << 12, 8, seed=5)
        assert [p.sigma for p in a.permutations] == [p.sigma for p in b.permutations]

    def test_reseeded_changes_permutations_not_filter(self, plan_small):
        fresh = plan_small.reseeded(seed=999)
        assert fresh.filt is plan_small.filt
        assert [p.sigma for p in fresh.permutations] != [
            p.sigma for p in plan_small.permutations
        ]

    def test_rounds_property(self, plan_small):
        assert plan_small.rounds == plan_small.filt.width // plan_small.B

    def test_describe(self, plan_small):
        assert "SfftPlan[" in plan_small.describe()

    def test_plan_with_explicit_params(self):
        from repro.core import derive_parameters

        params = derive_parameters(1 << 12, 8, loops=4)
        plan = make_plan(1 << 12, 8, params=params, seed=0)
        assert plan.loops == 4


class TestLocLoopsSplit:
    """The reference implementation's location/estimation loop split."""

    def test_default_votes_in_every_loop(self):
        p = derive_parameters(1 << 14, 16)
        assert p.loc_loops is None
        assert p.voting_loops == p.loops

    def test_split_reduces_voting_loops(self):
        p = derive_parameters(1 << 14, 16, loops=6, loc_loops=3)
        assert p.voting_loops == 3
        assert p.vote_threshold == 2  # majority of the location loops

    def test_loc_loops_bounds(self):
        with pytest.raises(ParameterError):
            derive_parameters(1 << 14, 16, loops=6, loc_loops=7)
        with pytest.raises(ParameterError):
            derive_parameters(1 << 14, 16, loops=6, loc_loops=0)

    def test_threshold_must_fit_loc_loops(self):
        with pytest.raises(ParameterError):
            derive_parameters(
                1 << 14, 16, loops=6, loc_loops=2, vote_threshold=3
            )

    def test_split_recovery_still_exact(self):
        from repro.core import sfft
        from repro.signals import make_sparse_signal

        sig = make_sparse_signal(1 << 14, 16, seed=5)
        plan = make_plan(1 << 14, 16, seed=6, loops=6, loc_loops=3)
        res = sfft(sig.time, plan=plan)
        assert set(res.locations.tolist()) == set(sig.locations.tolist())
        # Estimation still uses all 6 loops even though only 3 voted.
        assert res.votes.max() <= 3

    def test_split_reduces_modeled_votes(self):
        from repro.perf import sfft_step_counts

        full = sfft_step_counts(derive_parameters(1 << 20, 100, loops=6))
        split = sfft_step_counts(
            derive_parameters(1 << 20, 100, loops=6, loc_loops=3)
        )
        assert split.votes == full.votes // 2
        assert split.gathers == full.gathers  # all loops still bin

    def test_split_values_match_full_voting(self):
        # Same plan filter/permutations; the split changes which loops
        # vote, not the estimates of commonly recovered frequencies.
        from repro.core import sfft
        from repro.signals import make_sparse_signal
        import numpy as np

        sig = make_sparse_signal(1 << 13, 8, seed=7)
        full_plan = make_plan(1 << 13, 8, seed=8, loops=6)
        a = sfft(sig.time, plan=full_plan)
        split_params = derive_parameters(1 << 13, 8, loops=6, loc_loops=3)
        split_plan = make_plan(1 << 13, 8, seed=8, params=split_params)
        b = sfft(sig.time, plan=split_plan)
        assert (a.locations == b.locations).all()
        assert np.abs(a.values - b.values).max() < 1e-9 * np.abs(a.values).max()
