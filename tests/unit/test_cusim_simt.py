"""Unit tests for the SIMT lockstep micro-interpreter, including the
full-kernel validation of the Algorithm-2 cost spec."""

import numpy as np
import pytest

from repro.core import bin_loop_partition, make_plan
from repro.cusim import KEPLER_K20X, VBuffer, estimate_kernel, simt_run
from repro.errors import ParameterError
from repro.gpu.kernels import partition_spec
from repro.signals import make_sparse_signal

DEV = KEPLER_K20X


class TestBasics:
    def test_copy_kernel(self):
        src = np.arange(100, dtype=np.float64)

        def kernel(w, a, b):
            w.store(b, w.tid, w.load(a, w.tid))

        report, (_, out) = simt_run(kernel, 100, DEV, src, np.zeros(100))
        assert np.array_equal(out.data, src)
        assert report.loads == 100 and report.stores == 100

    def test_coalesced_copy_transactions(self):
        # 128 doubles: 4 warps x (2 load + 2 store) 128-byte segments.
        src = np.arange(128, dtype=np.float64)

        def kernel(w, a, b):
            w.store(b, w.tid, w.load(a, w.tid))

        report, _ = simt_run(kernel, 128, DEV, src, np.zeros(128))
        assert report.transactions == 4 * (2 + 2)
        assert report.coalescing_efficiency == 1.0

    def test_broadcast_load_one_transaction_per_warp(self):
        def kernel(w, a, b):
            w.store(b, w.tid, w.load(a, np.zeros_like(w.tid)))

        report, _ = simt_run(
            kernel, 64, DEV, np.ones(16), np.zeros(64)
        )
        load_txns = report.transactions - 2 * 2  # minus the 2x2 store segs
        assert load_txns == 2  # one per warp

    def test_predication_masks_lanes(self):
        src = np.arange(32, dtype=np.float64)

        def kernel(w, a, b):
            w.push_mask(w.tid % 2 == 0)
            w.store(b, w.tid, w.load(a, w.tid) + 1)
            w.pop_mask()

        report, (_, out) = simt_run(kernel, 32, DEV, src, np.zeros(32))
        assert (out.data[::2] == src[::2] + 1).all()
        assert (out.data[1::2] == 0).all()
        assert report.lane_utilization == pytest.approx(0.5)

    def test_unbalanced_mask_detected(self):
        def kernel(w, a):
            w.push_mask(w.tid >= 0)

        with pytest.raises(ParameterError):
            simt_run(kernel, 32, DEV, np.zeros(4))

    def test_pop_without_push(self):
        def kernel(w, a):
            w.pop_mask()

        with pytest.raises(ParameterError):
            simt_run(kernel, 32, DEV, np.zeros(4))

    def test_shape_mismatch_rejected(self):
        def kernel(w, a):
            w.load(a, np.zeros(3, dtype=np.int64))

        with pytest.raises(ParameterError):
            simt_run(kernel, 32, DEV, np.zeros(4))

    def test_vbuffer_requires_1d(self):
        with pytest.raises(ParameterError):
            VBuffer(np.zeros((2, 2)), base=0)

    def test_buffers_on_distinct_bases(self):
        def kernel(w, a, b):
            w.store(b, w.tid, w.load(a, w.tid))

        report, bufs = simt_run(kernel, 32, DEV, np.zeros(32), np.zeros(32))
        assert bufs[0].base != bufs[1].base
        assert len(report.per_buffer_transactions) == 2


class TestAlgorithm2Validation:
    """The flagship check: the interpreter *runs* the Algorithm-2 kernel and
    must agree with both the functional reference and the analytic spec."""

    @pytest.fixture(scope="class")
    def setup(self):
        n, k = 1 << 12, 8
        plan = make_plan(n, k, seed=1)
        sig = make_sparse_signal(n, k, seed=2)
        return n, plan, sig

    def _run(self, n, plan, sig, perm):
        B, rounds, w = plan.B, plan.rounds, plan.filt.width

        def kernel(warp, signal, filt, buckets):
            acc = np.zeros(warp.tid.size, dtype=np.complex128)
            for j in range(rounds):
                off = warp.tid + B * j
                warp.push_mask(off < w)
                idx = (off * perm.sigma + perm.tau) % n
                acc = acc + warp.load(signal, idx) * warp.load(filt, off)
                warp.pop_mask()
            warp.store(buckets, warp.tid, acc)

        return simt_run(
            kernel, B, DEV, sig.time, plan.filt.time,
            np.zeros(B, dtype=np.complex128),
        )

    def test_functional_equivalence(self, setup):
        n, plan, sig = setup
        perm = plan.permutations[0]
        _, (_, _, buckets) = self._run(n, plan, sig, perm)
        ref = bin_loop_partition(sig.time, plan.filt, plan.B, perm)
        assert np.abs(buckets.data - ref).max() < 1e-12 * max(
            1.0, np.abs(ref).max()
        )

    def test_transactions_match_cost_model(self, setup):
        n, plan, sig = setup
        perm = plan.permutations[0]
        report, _ = self._run(n, plan, sig, perm)
        spec = partition_spec(B=plan.B, rounds=plan.rounds)
        timing = estimate_kernel(spec, DEV)
        # Measured lockstep transactions vs analytic declaration: within 5%
        # (the random-gather count fluctuates with incidental segment hits).
        assert report.transactions == pytest.approx(timing.transactions, rel=0.05)

    def test_coalescing_efficiency_matches(self, setup):
        n, plan, sig = setup
        perm = plan.permutations[1]
        report, _ = self._run(n, plan, sig, perm)
        spec = partition_spec(B=plan.B, rounds=plan.rounds)
        timing = estimate_kernel(spec, DEV)
        assert report.coalescing_efficiency == pytest.approx(
            timing.coalescing_efficiency, rel=0.1
        )


class TestSimtPrice:
    def test_priced_copy_runs_and_prices(self):
        from repro.cusim import simt_price

        src = np.arange(2048, dtype=np.float64)

        def copy_kernel(w, a, b):
            w.store(b, w.tid, w.load(a, w.tid))

        report, bufs, secs = simt_price(copy_kernel, 2048, DEV, src, np.zeros(2048))
        assert np.array_equal(bufs[1].data, src)
        assert secs >= DEV.kernel_launch_overhead_s
        assert report.wire_bytes == 2 * 2048 * 8

    def test_scattered_kernel_priced_higher(self):
        from repro.cusim import simt_price

        n = 4096
        src = np.arange(n, dtype=np.float64)
        

        def gather_kernel(w, a, b):
            w.store(b, w.tid, w.load(a, (w.tid * 1031) % n))

        def linear_kernel(w, a, b):
            w.store(b, w.tid, w.load(a, w.tid))

        rep_g, _, t_gather = simt_price(gather_kernel, n, DEV, src, np.zeros(n))
        rep_l, bufs, t_linear = simt_price(linear_kernel, n, DEV, src, np.zeros(n))
        # Wire traffic blows up ~8x; time less so (launch overhead floors
        # both of these tiny kernels).
        assert rep_g.wire_bytes > 5 * rep_l.wire_bytes
        assert t_gather > 1.5 * t_linear
        assert np.array_equal(bufs[1].data, src)
