"""Legacy setup shim.

``pip install -e .`` builds metadata via PEP 517, which requires the
``wheel`` package; fully offline environments may lack it.  This shim lets
``python setup.py develop`` install the package editably without wheel.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
