#!/usr/bin/env python3
"""Validating the performance model: run a real kernel in warp lockstep.

The reproduction's figures come from a cost model, so this example shows
the receipts: it *executes* the paper's Algorithm-2 kernel (permutation +
filter + fold) inside the SIMT lockstep interpreter, instruction by
instruction, warp by warp, and compares

* the functional output against the reference binning (must be identical),
* the measured global-memory transactions against the analytic declaration
  the cost model prices (must agree),

then shows what the asynchronous layout transformation changes: the exec
kernel's reads become perfectly coalesced.

Run:  python examples/model_validation.py
"""

import numpy as np

from repro.core import bin_loop_partition, make_plan
from repro.cusim import KEPLER_K20X, estimate_kernel, simt_run
from repro.gpu.kernels import exec_spec, partition_spec
from repro.signals import make_sparse_signal


def main() -> int:
    n, k = 1 << 12, 8
    plan = make_plan(n, k, seed=1)
    sig = make_sparse_signal(n, k, seed=2)
    perm = plan.permutations[0]
    B, rounds, w = plan.B, plan.rounds, plan.filt.width
    dev = KEPLER_K20X
    print(f"Algorithm 2 on the SIMT interpreter: n={n}, B={B}, "
          f"rounds={rounds} ({B} threads, warp lockstep)")

    # --- the fused Algorithm-2 kernel, as the hardware would run it ------
    def perm_filter_kernel(warp, signal, filt, buckets):
        acc = np.zeros(warp.tid.size, dtype=np.complex128)
        for j in range(rounds):
            off = warp.tid + B * j
            warp.push_mask(off < w)
            idx = (off * perm.sigma + perm.tau) % n
            acc = acc + warp.load(signal, idx) * warp.load(filt, off)
            warp.pop_mask()
        warp.store(buckets, warp.tid, acc)

    report, (_, _, buckets) = simt_run(
        perm_filter_kernel, B, dev,
        sig.time, plan.filt.time, np.zeros(B, dtype=np.complex128),
    )
    ref = bin_loop_partition(sig.time, plan.filt, B, perm)
    err = np.abs(buckets.data - ref).max()
    print(f"  functional: max |diff| vs reference = {err:.2e}")
    assert err < 1e-12 * max(1.0, np.abs(ref).max())

    timing = estimate_kernel(partition_spec(B=B, rounds=rounds), dev)
    print(f"  transactions: measured {report.transactions}, "
          f"declared {timing.transactions} "
          f"({100 * report.transactions / timing.transactions:.1f}%)")
    print(f"  coalescing efficiency: measured "
          f"{report.coalescing_efficiency:.3f}, model "
          f"{timing.coalescing_efficiency:.3f}")
    assert abs(report.transactions - timing.transactions) < 0.05 * timing.transactions

    # --- the layout-transformed exec kernel: coalesced by construction ---
    remapped = sig.time[(np.arange(B) * perm.sigma + perm.tau) % n]

    def exec_kernel(warp, a_prime, filt, buckets):
        v = warp.load(a_prime, warp.tid) * warp.load(filt, warp.tid)
        warp.store(buckets, warp.tid, v)

    exec_report, _ = simt_run(
        exec_kernel, B, dev,
        remapped, plan.filt.time[:B].copy(), np.zeros(B, dtype=np.complex128),
    )
    print(f"\nexec kernel after the layout transformation: coalescing "
          f"{exec_report.coalescing_efficiency:.2f} "
          f"(vs {report.coalescing_efficiency:.2f} for the fused gather)")
    assert exec_report.coalescing_efficiency > 0.99

    print("\nModel validated: declared patterns = measured behaviour.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
