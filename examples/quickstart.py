#!/usr/bin/env python3
"""Quickstart: compute a sparse FFT and compare it with the dense FFT.

Demonstrates the three core entry points:

* ``repro.sfft``          — one-shot CPU sparse transform
* ``repro.make_plan``     — reusable plans (the fast path for repeated use)
* ``repro.gpu.cusfft``    — the paper's GPU pipeline on the simulated K20x,
                            returning both coefficients and a kernel timeline

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_plan, make_sparse_signal, sfft
from repro.cusim import render_summary
from repro.gpu import cusfft


def main() -> int:
    n, k = 1 << 16, 24
    print(f"Generating an exactly {k}-sparse signal of n = {n} samples...")
    signal = make_sparse_signal(n, k, seed=42)

    # --- one-shot sparse transform -------------------------------------
    result = sfft(signal.time, k, seed=7)
    print(f"sFFT recovered {result.k_found} coefficients.")

    truth = {int(f): v for f, v in zip(signal.locations, signal.values)}
    assert set(result.as_dict()) == set(truth), "support mismatch!"
    worst = max(
        abs(result.as_dict()[f] - v) / abs(v) for f, v in truth.items()
    )
    print(f"All {k} locations exact; worst value error = {worst:.2e}")

    # --- compare against the dense FFT ----------------------------------
    dense = np.fft.fft(signal.time)
    l1 = np.abs(result.to_dense() - dense).sum() / k / n
    print(f"L1 error per coefficient vs numpy.fft (unit scale): {l1:.2e}")

    # --- plans amortize filter synthesis ---------------------------------
    plan = make_plan(n, k, seed=7)
    for trial in range(3):
        shifted = np.roll(signal.time, 97 * (trial + 1))
        res = sfft(shifted, plan=plan)
        assert res.k_found == k
    print(f"Re-used one plan for 3 more transforms ({plan.describe()}).")

    # --- the GPU pipeline on the simulated K20x --------------------------
    run = cusfft(signal.time, k, seed=7)
    assert set(run.result.locations) == set(signal.locations)
    print(f"\ncusFFT (simulated GPU) agrees; modeled device time = "
          f"{run.modeled_time_s * 1e3:.3f} ms")
    print(render_summary(run.report, title="cusFFT kernel timeline"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
