#!/usr/bin/env python3
"""Sparse spectrogram of a frequency-hopping signal (batch API).

A frequency-hopping transmitter occupies one narrow carrier per dwell.
Each spectrogram frame is therefore extremely sparse — the perfect batch
workload: one plan, many frames, each transformed in sub-linear time.

This example synthesizes a hopping signal (plus a fixed beacon tone),
computes a sparse spectrogram with ``sfft_batch``, renders it as ASCII art,
and checks the recovered hop sequence against the ground truth.

Run:  python examples/hopping_spectrogram.py
"""

import numpy as np

from repro import make_plan, sfft_batch


def synthesize_hopper(
    frame_len: int, frames: int, carriers: list[int], seed: int
) -> tuple[np.ndarray, list[int]]:
    """Frequency hopper: one carrier per frame plus a constant beacon."""
    rng = np.random.default_rng(seed)
    t = np.arange(frame_len)
    beacon = frame_len // 16
    signal = np.empty((frames, frame_len), dtype=np.complex128)
    hops = []
    for fr in range(frames):
        carrier = int(rng.choice(carriers))
        hops.append(carrier)
        signal[fr] = (
            np.exp(2j * np.pi * carrier * t / frame_len)
            + 0.6 * np.exp(2j * np.pi * beacon * t / frame_len)
        )
    return signal, hops


def main() -> int:
    frame_len, frames = 1 << 14, 24
    carriers = [1200, 2800, 5600, 9000, 12500, 15800]
    signal, hops = synthesize_hopper(frame_len, frames, carriers, seed=33)
    beacon = frame_len // 16

    print(f"Frequency hopper: {frames} frames of n={frame_len}, "
          f"{len(carriers)} carriers + beacon at bin {beacon}")

    # One plan, reused across every frame: k=2 (carrier + beacon).
    plan = make_plan(frame_len, 2, seed=34)
    results = sfft_batch(signal, plan=plan)

    recovered = []
    for res in results:
        d = res.as_dict()
        assert beacon in d, "beacon lost"
        carrier = max(
            (f for f in d if f != beacon), key=lambda f: abs(d[f])
        )
        recovered.append(carrier)

    assert recovered == hops, "hop sequence mismatch"
    print("Recovered hop sequence matches ground truth.")

    # ASCII spectrogram: frames along x, carriers along y.
    bands = sorted(set(carriers) | {beacon})
    print("\nsparse spectrogram (rows = carrier bins, cols = frames):")
    for band in reversed(bands):
        marks = "".join(
            "#" if recovered[fr] == band else ("-" if band == beacon else " ")
            for fr in range(frames)
        )
        label = "beacon" if band == beacon else f"{band:6d}"
        print(f"  {label:>7} |{marks}|")

    total_work = frames * 2
    print(f"\n{frames} transforms recovered {total_work} coefficients "
          f"without computing any of the {frames} dense {frame_len}-point FFTs.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
