#!/usr/bin/env python3
"""Sparse-spike seismic deconvolution with the sparse FFT.

The paper's work was funded by Shell and aimed at seismic processing: a
seismic trace is a sparse *reflectivity* series convolved with a source
wavelet.  Deconvolving the known wavelet in the frequency domain leaves
``R(f) = T(f) / W(f)`` whose inverse transform — the reflectivity — is
sparse in time.  Since ``fft(R)[f] = n * r[-f mod n]``, a *forward* sparse
transform of the deconvolved spectrum recovers the reflector positions and
amplitudes directly, in sub-linear time.

Water-level regularization caps the division where the wavelet has no
energy (a standard deconvolution guard); sFFT's voting absorbs the
remaining noise.

Run:  python examples/seismic_deconvolution.py
"""

import numpy as np

from repro import sfft
from repro.signals import make_seismic_reflectivity


def deconvolved_spectrum(trace: np.ndarray, peak_bin: int, water: float = 0.02):
    """Frequency-domain wavelet deconvolution with a water level."""
    n = trace.size
    f = np.fft.fftfreq(n) * n
    f0 = float(peak_bin)
    wavelet = (f / f0) ** 2 * np.exp(1.0 - (f / f0) ** 2)
    level = water * np.abs(wavelet).max()
    safe = np.where(np.abs(wavelet) > level, wavelet, level)
    return np.fft.fft(trace) / safe


def main() -> int:
    n, reflectors, peak_bin = 1 << 16, 12, 1 << 10
    print(f"Synthesizing a seismic trace: n={n}, {reflectors} reflectors, "
          f"Ricker wavelet peak at bin {peak_bin}, 35 dB SNR")
    trace, times = make_seismic_reflectivity(
        n, reflectors, wavelet_peak_bin=peak_bin, snr=35.0, seed=21
    )

    spectrum = deconvolved_spectrum(trace, peak_bin)

    # The water level leaves a little residual smearing around each spike,
    # so each reflector appears as a tight cluster of coefficients.
    # Recover generously, then cluster and keep each cluster's peak.
    result = sfft(spectrum, 16 * reflectors, seed=22)
    spike_times = (-result.locations) % n
    order = np.argsort(spike_times)
    spike_times = spike_times[order]
    spike_amps = np.abs(result.values[order]) / n

    clusters: list[tuple[int, float]] = []
    for t, a in zip(spike_times, spike_amps):
        if clusters and t - clusters[-1][0] <= 8:
            if a > clusters[-1][1]:
                clusters[-1] = (int(t), float(a))
        else:
            clusters.append((int(t), float(a)))
    clusters.sort(key=lambda c: c[1], reverse=True)
    picked = sorted(t for t, _ in clusters[:reflectors])

    print(f"true reflector times:      {times.tolist()}")
    print(f"recovered reflector times: {picked}")

    picked_arr = np.asarray(picked)
    matched = sum(1 for t in times if np.min(np.abs(picked_arr - t)) <= 3)
    print(f"matched {matched}/{reflectors} reflectors (within 3 samples)")
    assert matched >= reflectors - 1, "deconvolution missed reflectors"

    amps = np.array(sorted(a for _, a in clusters[:reflectors]))
    print(f"recovered spike amplitudes in [{amps.min():.2f}, {amps.max():.2f}] "
          "(attenuated by the water-level band limit; relative pattern "
          "follows the true [0.5, 1.0] reflectivities)")
    print("Sparse deconvolution succeeded.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
