#!/usr/bin/env python3
"""A tour of the performance tooling: step profiling, kernel timelines,
variant ablations.

Reproduces in miniature what Sections IV-V of the paper do: profile the
serial pipeline to find the bottleneck (Figure 2), inspect the GPU kernel
timeline (nvprof-style), and compare the baseline against each optimization.

Run:  python examples/profiling_tour.py
"""

from repro import make_sparse_signal
from repro.analysis import measure_breakdown
from repro.cusim import render_summary
from repro.gpu import ATOMIC_HISTOGRAM, BASELINE, OPTIMIZED, CusFFT
from repro.utils import format_seconds, format_table


def main() -> int:
    n, k = 1 << 18, 64

    # --- Figure 2 in miniature: measured step breakdown -----------------
    print(f"Measured CPU step breakdown (n=2^18, k={k}):")
    bd = measure_breakdown(n, k, seed=5, repeats=2)
    rows = [
        [name, format_seconds(t), f"{100 * share:.1f}%"]
        for (name, t), share in zip(
            bd.seconds.items(), bd.shares().values()
        )
    ]
    print(format_table(["step", "time", "share"], rows))
    print(f"dominant step: {bd.dominant()}  (the paper's Figure 2 finding)\n")

    # --- GPU kernel timeline --------------------------------------------
    signal = make_sparse_signal(n, k, seed=6)
    transform = CusFFT.create(n, k, config=OPTIMIZED)
    run = transform.execute(signal.time, seed=7)
    assert set(run.result.locations) == set(signal.locations)
    print(render_summary(run.report, title="Optimized cusFFT timeline"))
    print()

    # --- variant comparison ----------------------------------------------
    print("Modeled end-to-end device time per variant:")
    rows = []
    for config in (ATOMIC_HISTOGRAM, BASELINE, OPTIMIZED):
        t = CusFFT.create(n, k, config=config).estimated_time()
        rows.append([config.label(), format_seconds(t)])
    print(format_table(["variant", "modeled time"], rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
