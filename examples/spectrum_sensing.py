#!/usr/bin/env python3
"""Cognitive-radio spectrum sensing with the sparse FFT.

The paper's introduction names cognitive radio as a motivating workload:
a wideband receiver must find which channels are occupied, but only a
handful are — the spectrum is sparse.  A dense FFT of the whole band is
wasteful; the sparse FFT finds the occupied carriers in sub-linear time.

This example builds a 64-channel wideband scene with 25% occupancy at
35 dB SNR, recovers the carriers with sFFT, maps them to channels, and
scores the detection against ground truth.

Run:  python examples/spectrum_sensing.py
"""

import numpy as np

from repro import sfft
from repro.signals import make_wideband_channels


def detect_channels(carrier_freqs: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Mark a channel occupied when any recovered carrier falls inside it."""
    occupied = np.zeros(edges.size - 1, dtype=bool)
    idx = np.searchsorted(edges, carrier_freqs, side="right") - 1
    occupied[idx[(idx >= 0) & (idx < occupied.size)]] = True
    return occupied


def main() -> int:
    n, channels, occupancy = 1 << 18, 64, 0.25
    scene = make_wideband_channels(
        n, channels, occupancy, tones_per_channel=4, snr=35.0, seed=11
    )
    k = scene.signal.k
    print(
        f"Wideband scene: n={n}, {channels} channels, "
        f"{int(scene.occupied.sum())} occupied, {k} carriers, 35 dB SNR"
    )

    result = sfft(scene.signal.time, k, seed=12)
    print(f"sFFT recovered {result.k_found} carriers "
          f"(touching {n // 1} -> {result.k_found} coefficients)")

    detected = detect_channels(result.locations, scene.channel_edges)
    tp = int((detected & scene.occupied).sum())
    fp = int((detected & ~scene.occupied).sum())
    fn = int((~detected & scene.occupied).sum())
    print(f"Channel detection: {tp} hits, {fp} false alarms, {fn} misses")

    for c in np.flatnonzero(detected):
        carriers = result.locations[
            (result.locations >= scene.channel_edges[c])
            & (result.locations < scene.channel_edges[c + 1])
        ]
        truth = "occupied" if scene.occupied[c] else "EMPTY (false alarm)"
        print(f"  channel {c:2d}: {carriers.size} carriers -> {truth}")

    assert fn == 0, "missed an occupied channel"
    assert fp == 0, "false alarm on an empty channel"
    print("All occupied channels detected, no false alarms.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
