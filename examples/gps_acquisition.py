#!/usr/bin/env python3
"""GPS code acquisition via the sparse (inverse) FFT.

Paper reference [19] ("Faster GPS via the sparse Fourier transform",
MobiCom'12) is one of sFFT's flagship applications: GPS acquisition
correlates the received signal against a local C/A code replica over all
code phases, classically via ``ifft(fft(rx) * conj(fft(code)))``.  The
correlation has a *single* dominant spike — a 1-sparse "spectrum" — so a
sparse transform finds the code phase without computing the full inverse
FFT.

Because ``ifft(y)[t] = fft(y)[-t mod n] / n``, running the *forward* sparse
transform on the frequency-domain product recovers the spike at the
mirrored index; we undo the mirror to report the delay.

Run:  python examples/gps_acquisition.py
"""

import numpy as np

from repro import sfft
from repro.signals import make_gps_correlation


def sparse_acquire(product: np.ndarray, k: int = 8, seed: int = 0) -> int:
    """Find the correlation peak's code phase from the spectrum product."""
    n = product.size
    result = sfft(product, k, seed=seed)
    # fft(product)[f] = n * corr[-f mod n]: the strongest recovered
    # coefficient sits at the mirrored delay.
    best = result.locations[np.argmax(np.abs(result.values))]
    return int((-best) % n)


def main() -> int:
    n = 1 << 16
    true_delay, doppler_bin = 23171, 5
    print(f"Synthesizing GPS scene: n={n}, code delay={true_delay}, "
          f"Doppler bin={doppler_bin}, 20 dB SNR, full-length PN code")
    # Full-length (P-code-style) PN sequence: the correlation is a single
    # spike.  A short repeating C/A code would alias the delay modulo the
    # code period — see make_gps_correlation's docstring.
    product, code, delay = make_gps_correlation(
        n, true_delay, doppler_bin, snr=20.0, seed=3
    )
    assert delay == true_delay

    # Classical dense acquisition for reference.
    corr = np.fft.ifft(product)
    dense_delay = int(np.argmax(np.abs(corr)))

    # Sparse acquisition: k=8 tolerates correlation side lobes.
    sparse_delay = sparse_acquire(product, k=8, seed=4)

    print(f"dense acquisition:  delay = {dense_delay}")
    print(f"sparse acquisition: delay = {sparse_delay}")
    assert dense_delay == true_delay, "dense reference failed"
    assert sparse_delay == true_delay, "sparse acquisition failed"

    peak = np.abs(corr[true_delay])
    noise = np.median(np.abs(corr))
    print(f"correlation peak-to-median ratio: {peak / noise:.1f}x")
    print("Sparse acquisition matched the dense reference.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
